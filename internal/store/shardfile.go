package store

// GQASHR1: the per-shard frozen snapshot format behind the multi-process
// sharding layer. One file holds exactly one shard part of a ShardSet —
// the local CSRs, boundary index, signatures, roles, and owned-entity
// list that `cmd/gqa-shard` serves over the shard RPC protocol (see
// shardrpc.go) — plus the assembly-time global metadata (generation,
// term/triple counts, Table-4 stats) the coordinator needs to validate
// that K part files describe the same frozen graph it holds.
//
// The layout reuses the GQAFRZ1 machinery wholesale: magic line, version,
// section count, FNV-64a content hash over the section directory,
// per-section {length, CRC32} directory, header CRC32, then the payloads
// in fixed order with trailing bytes rejected. It is a distinct magic —
// not a GQAFRZ1 variant — because a shard part deliberately violates the
// monolithic loader's semantic contract: its in-edges reference remote
// vertices no out-edge in the file covers, so the out/in/pred bijection
// check that GQAFRZ1 validation is built on cannot apply. The part
// loader runs its own validation pass (offset monotonicity, sorted
// spans, ownership of every local structure) instead.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	shardMagic   = "GQASHR1\n"
	shardVersion = 1
)

// Section indexes; order is part of the format.
const (
	shrMeta = iota
	shrOutOff
	shrOutEdges
	shrInOff
	shrInEdges
	shrPredIDs
	shrPredOff
	shrPredTriples
	shrBoundary
	shrSig
	shrRoles
	shrEntities
	shrSectionCount
)

var shrSectionNames = [shrSectionCount]string{
	"meta", "outOff", "outEdges", "inOff", "inEdges",
	"predIDs", "predOff", "predTriples", "boundary", "sig", "roles", "entities",
}

const (
	shrHeaderFixed  = 24 // magic + version + section count + content hash
	shrDirEntrySize = 12 // length uint64 + CRC32 uint32
	shrHeaderSize   = shrHeaderFixed + shrSectionCount*shrDirEntrySize + 4
	shrMetaSize     = 92
)

// shardMeta is the fixed-size meta section: the part's identity within
// its ShardSet and the assembly-time global facts every part of one
// export must agree on.
type shardMeta struct {
	shard    uint32
	k        uint32
	gen      uint64 // global mutation generation at export
	shardGen uint64 // this shard's generation at build
	nTerms   uint64 // global term count
	nTriples uint64 // global triple count
	rdfType  uint32 // interned rdf:type ID (None when absent)
	literals uint64 // owned literal terms (this shard)
	stats    Stats  // global Table-4 stats at export
}

// ShardPart is one loaded (or exported) shard of a frozen ShardSet: the
// unit gqa-shard serves. Obtain one from LoadShardPart or ShardSet.Part.
type ShardPart struct {
	part *shardPart
	meta shardMeta
}

// Shard returns this part's shard index; K its set's shard count.
func (sp *ShardPart) Shard() int { return int(sp.meta.shard) }

// K returns the shard count of the set this part belongs to.
func (sp *ShardPart) K() int { return int(sp.meta.k) }

// Generation returns the global mutation generation the part was
// exported at.
func (sp *ShardPart) Generation() uint64 { return sp.meta.gen }

// NumTerms returns the global term count at export time.
func (sp *ShardPart) NumTerms() int { return int(sp.meta.nTerms) }

// Part wraps shard i of the set for serving or export — the in-process
// handle the loopback tests and SaveShardPart build from.
func (ss *ShardSet) Part(i int) *ShardPart {
	p := ss.parts[i]
	return &ShardPart{
		part: p,
		meta: shardMeta{
			shard:    uint32(i),
			k:        uint32(ss.k),
			gen:      ss.gen,
			shardGen: p.gen,
			nTerms:   uint64(len(ss.terms)),
			nTriples: uint64(ss.nTriples),
			rdfType:  uint32(ss.rdfType),
			literals: uint64(p.literals),
			stats:    ss.stats,
		},
	}
}

// SaveShardPart freezes the sharded graph (a pointer load when already
// frozen) and writes shard `shard` of the ShardSet in GQASHR1 format.
// The graph must be sharded (SetShards(k>1)) and shard must be in
// [0, k).
func SaveShardPart(w io.Writer, g *Graph, shard int) error {
	if g.NumShards() <= 1 {
		return fmt.Errorf("store: shard part export needs a sharded graph (SetShards), have %d shards", g.NumShards())
	}
	g.Freeze()
	ss := g.shards.Load()
	if ss == nil {
		return fmt.Errorf("store: shard part export: graph did not freeze into a ShardSet")
	}
	if shard < 0 || shard >= ss.k {
		return fmt.Errorf("store: shard part export: shard %d out of range [0,%d)", shard, ss.k)
	}
	return ss.Part(shard).Save(w)
}

// Save writes the part in GQASHR1 format.
func (sp *ShardPart) Save(w io.Writer) error {
	secs := encodeShardSections(sp)
	var dir []byte
	for _, s := range secs {
		dir = binary.LittleEndian.AppendUint64(dir, uint64(len(s)))
		dir = binary.LittleEndian.AppendUint32(dir, crc32.ChecksumIEEE(s))
	}
	hdr := make([]byte, 0, shrHeaderSize)
	hdr = append(hdr, shardMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, shardVersion)
	hdr = binary.LittleEndian.AppendUint32(hdr, shrSectionCount)
	hdr = binary.LittleEndian.AppendUint64(hdr, frzContentHash(dir))
	hdr = append(hdr, dir...)
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(hdr))
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(hdr); err != nil {
		return fmt.Errorf("store: writing shard part header: %w", err)
	}
	for i, s := range secs {
		if _, err := bw.Write(s); err != nil {
			return fmt.Errorf("store: writing shard part section %s: %w", shrSectionNames[i], err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("store: flushing shard part: %w", err)
	}
	return nil
}

func encodeShardSections(sp *ShardPart) [shrSectionCount][]byte {
	var secs [shrSectionCount][]byte
	p, m := sp.part, &sp.meta

	mb := make([]byte, 0, shrMetaSize)
	mb = binary.LittleEndian.AppendUint32(mb, m.shard)
	mb = binary.LittleEndian.AppendUint32(mb, m.k)
	mb = binary.LittleEndian.AppendUint64(mb, m.gen)
	mb = binary.LittleEndian.AppendUint64(mb, m.shardGen)
	mb = binary.LittleEndian.AppendUint64(mb, m.nTerms)
	mb = binary.LittleEndian.AppendUint64(mb, m.nTriples)
	mb = binary.LittleEndian.AppendUint32(mb, m.rdfType)
	mb = binary.LittleEndian.AppendUint64(mb, m.literals)
	for _, v := range [5]int{m.stats.Entities, m.stats.Classes, m.stats.Literals, m.stats.Triples, m.stats.Predicates} {
		mb = binary.LittleEndian.AppendUint64(mb, uint64(v))
	}
	secs[shrMeta] = mb

	secs[shrOutOff] = encodeFrzU32s(p.outOff)
	secs[shrOutEdges] = encodeFrzEdges(p.outEdges)
	secs[shrInOff] = encodeFrzU32s(p.inOff)
	secs[shrInEdges] = encodeFrzEdges(p.inEdges)
	secs[shrPredIDs] = encodeFrzIDs(p.predIDs)
	secs[shrPredOff] = encodeFrzU32s(p.predOff)
	secs[shrPredTriples] = encodeFrzSpos(p.predTriples)
	secs[shrBoundary] = encodeShardBoundary(p.boundary)
	secs[shrSig] = encodeFrzSigs(p.sig)
	secs[shrRoles] = append([]byte(nil), p.roles...)
	secs[shrEntities] = encodeFrzIDs(p.entities)
	return secs
}

func encodeShardBoundary(v []BoundaryEdge) []byte {
	b := make([]byte, 0, 16*len(v))
	for _, e := range v {
		b = binary.LittleEndian.AppendUint32(b, e.Local)
		b = binary.LittleEndian.AppendUint32(b, uint32(e.Pred))
		b = binary.LittleEndian.AppendUint32(b, e.Remote)
		b = binary.LittleEndian.AppendUint32(b, uint32(e.To))
	}
	return b
}

func decodeShardBoundary(b []byte) []BoundaryEdge {
	out := make([]BoundaryEdge, len(b)/16)
	for i := range out {
		out[i] = BoundaryEdge{
			Local:  binary.LittleEndian.Uint32(b[16*i:]),
			Pred:   ID(binary.LittleEndian.Uint32(b[16*i+4:])),
			Remote: binary.LittleEndian.Uint32(b[16*i+8:]),
			To:     ID(binary.LittleEndian.Uint32(b[16*i+12:])),
		}
	}
	return out
}

// LoadShardPart reads, checksums, and validates one GQASHR1 shard part.
// Corrupt, truncated, or internally inconsistent input is rejected with
// an error naming the failing section; trailing bytes after the last
// section are an error too.
func LoadShardPart(r io.Reader) (*ShardPart, error) {
	fail := func(format string, args ...any) (*ShardPart, error) {
		return nil, fmt.Errorf("store: shard part: "+format, args...)
	}
	cr := &countingReader{r: r}
	hdr := make([]byte, shrHeaderSize)
	if _, err := io.ReadFull(cr, hdr); err != nil {
		return fail("reading header: %w", err)
	}
	if string(hdr[:len(shardMagic)]) != shardMagic {
		return fail("bad magic %q", hdr[:len(shardMagic)])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != shardVersion {
		return fail("unsupported version %d", v)
	}
	if n := binary.LittleEndian.Uint32(hdr[12:]); n != shrSectionCount {
		return fail("section count %d, want %d", n, shrSectionCount)
	}
	contentHash := binary.LittleEndian.Uint64(hdr[16:])
	crcOff := shrHeaderSize - 4
	if got, want := crc32.ChecksumIEEE(hdr[:crcOff]), binary.LittleEndian.Uint32(hdr[crcOff:]); got != want {
		return fail("header CRC mismatch (got %08x, want %08x)", got, want)
	}
	if got := frzContentHash(hdr[shrHeaderFixed:crcOff]); got != contentHash {
		return fail("content hash mismatch")
	}

	var lengths [shrSectionCount]uint64
	var crcs [shrSectionCount]uint32
	for i := 0; i < shrSectionCount; i++ {
		off := shrHeaderFixed + i*shrDirEntrySize
		lengths[i] = binary.LittleEndian.Uint64(hdr[off:])
		crcs[i] = binary.LittleEndian.Uint32(hdr[off+8:])
	}
	var secs [shrSectionCount][]byte
	for i := 0; i < shrSectionCount; i++ {
		b, err := readFrozenSection(cr, shrSectionNames[i], lengths[i])
		if err != nil {
			return nil, err
		}
		if got := crc32.ChecksumIEEE(b); got != crcs[i] {
			return fail("section %s CRC mismatch (got %08x, want %08x)", shrSectionNames[i], got, crcs[i])
		}
		secs[i] = b
	}
	var tail [1]byte
	if n, _ := cr.Read(tail[:]); n != 0 {
		return fail("trailing bytes after last section")
	}

	mb := secs[shrMeta]
	if len(mb) != shrMetaSize {
		return fail("meta section is %d bytes, want %d", len(mb), shrMetaSize)
	}
	var m shardMeta
	m.shard = binary.LittleEndian.Uint32(mb[0:])
	m.k = binary.LittleEndian.Uint32(mb[4:])
	m.gen = binary.LittleEndian.Uint64(mb[8:])
	m.shardGen = binary.LittleEndian.Uint64(mb[16:])
	m.nTerms = binary.LittleEndian.Uint64(mb[24:])
	m.nTriples = binary.LittleEndian.Uint64(mb[32:])
	m.rdfType = binary.LittleEndian.Uint32(mb[40:])
	m.literals = binary.LittleEndian.Uint64(mb[44:])
	m.stats = Stats{
		Entities:   int(binary.LittleEndian.Uint64(mb[52:])),
		Classes:    int(binary.LittleEndian.Uint64(mb[60:])),
		Literals:   int(binary.LittleEndian.Uint64(mb[68:])),
		Triples:    int(binary.LittleEndian.Uint64(mb[76:])),
		Predicates: int(binary.LittleEndian.Uint64(mb[84:])),
	}
	if m.k < 2 {
		return fail("shard count %d, want >= 2", m.k)
	}
	if m.shard >= m.k {
		return fail("shard index %d out of range [0,%d)", m.shard, m.k)
	}
	if m.nTerms > maxFrozenTerms {
		return fail("implausible term count %d", m.nTerms)
	}
	shard, k, n := int(m.shard), int(m.k), int(m.nTerms)
	nLocal := 0
	if n > shard {
		nLocal = (n-shard-1)/k + 1
	}

	p := &shardPart{
		gen:         m.shardGen,
		shard:       shard,
		k:           k,
		nTerms:      n,
		outOff:      decodeFrzU32s(secs[shrOutOff]),
		outEdges:    decodeFrzEdges(secs[shrOutEdges]),
		inOff:       decodeFrzU32s(secs[shrInOff]),
		inEdges:     decodeFrzEdges(secs[shrInEdges]),
		predIDs:     decodeFrzIDs(secs[shrPredIDs]),
		predOff:     decodeFrzU32s(secs[shrPredOff]),
		predTriples: decodeFrzSpos(secs[shrPredTriples]),
		boundary:    decodeShardBoundary(secs[shrBoundary]),
		sig:         decodeFrzSigs(secs[shrSig]),
		roles:       append([]uint8(nil), secs[shrRoles]...),
		entities:    decodeFrzIDs(secs[shrEntities]),
		literals:    int(m.literals),
	}
	if err := validateShardPart(p, nLocal); err != nil {
		return nil, fmt.Errorf("store: shard part: %w", err)
	}
	p.bytes = int64(len(p.outEdges)+len(p.inEdges))*8 +
		int64(len(p.outOff)+len(p.inOff)+len(p.predOff))*4 +
		int64(len(p.predTriples))*12 +
		int64(len(p.boundary))*16 +
		int64(len(p.sig))*16 +
		int64(len(p.roles)) +
		int64(len(p.entities)+len(p.predIDs))*4
	return &ShardPart{part: p, meta: m}, nil
}

// validateShardPart is the semantic pass over a decoded part: every local
// structure must be exactly the shape buildShardPart produces, so a
// corrupted-but-CRC-colliding or maliciously crafted file cannot push the
// server into out-of-range panics or unsorted spans that would silently
// break the coordinator's merge order.
func validateShardPart(p *shardPart, nLocal int) error {
	if len(p.outOff) != nLocal+1 || len(p.inOff) != nLocal+1 {
		// An empty shard legitimately encodes offsets [0]; normalize.
		if nLocal == 0 && len(p.outOff) <= 1 && len(p.inOff) <= 1 {
			p.outOff = []uint32{0}
			p.inOff = []uint32{0}
		} else {
			return fmt.Errorf("offset arrays are %d/%d entries, want %d", len(p.outOff), len(p.inOff), nLocal+1)
		}
	}
	if len(p.sig) != nLocal || len(p.roles) != nLocal {
		return fmt.Errorf("sig/roles are %d/%d entries, want %d", len(p.sig), len(p.roles), nLocal)
	}
	checkCSR := func(name string, off []uint32, edges []Edge) error {
		if off[0] != 0 || off[len(off)-1] != uint32(len(edges)) {
			return fmt.Errorf("%s offsets do not cover the edge array", name)
		}
		for i := 1; i < len(off); i++ {
			if off[i] < off[i-1] {
				return fmt.Errorf("%s offsets not monotone at %d", name, i)
			}
			span := edges[off[i-1]:off[i]]
			for j := 1; j < len(span); j++ {
				if span[j].Pred < span[j-1].Pred ||
					(span[j].Pred == span[j-1].Pred && span[j].To <= span[j-1].To) {
					return fmt.Errorf("%s span %d not strictly (Pred,To)-sorted", name, i-1)
				}
			}
		}
		nT := uint64(p.nTerms)
		for _, e := range edges {
			if uint64(e.Pred) >= nT || uint64(e.To) >= nT {
				return fmt.Errorf("%s edge references term beyond nTerms", name)
			}
		}
		return nil
	}
	if err := checkCSR("out", p.outOff, p.outEdges); err != nil {
		return err
	}
	if err := checkCSR("in", p.inOff, p.inEdges); err != nil {
		return err
	}
	// Predicate-major CSR: ascending predicate list, monotone offsets
	// covering the triple array, groups (S,O)-sorted with owned subjects.
	if len(p.predOff) != len(p.predIDs)+1 {
		if len(p.predIDs) == 0 && len(p.predOff) <= 1 {
			p.predOff = []uint32{0}
		} else {
			return fmt.Errorf("predOff has %d entries for %d predicates", len(p.predOff), len(p.predIDs))
		}
	}
	if p.predOff[0] != 0 || p.predOff[len(p.predOff)-1] != uint32(len(p.predTriples)) {
		return fmt.Errorf("predOff does not cover predTriples")
	}
	for i := 1; i < len(p.predIDs); i++ {
		if p.predIDs[i] <= p.predIDs[i-1] {
			return fmt.Errorf("predIDs not strictly ascending at %d", i)
		}
	}
	for i := 0; i < len(p.predIDs); i++ {
		if p.predOff[i+1] < p.predOff[i] {
			return fmt.Errorf("predOff not monotone at %d", i)
		}
		group := p.predTriples[p.predOff[i]:p.predOff[i+1]]
		for j, t := range group {
			if t.P != p.predIDs[i] {
				return fmt.Errorf("predicate group %d holds foreign predicate", i)
			}
			if int(t.S)%p.k != p.shard {
				return fmt.Errorf("predicate group %d holds unowned subject %d", i, t.S)
			}
			if j > 0 && (t.S < group[j-1].S || (t.S == group[j-1].S && t.O <= group[j-1].O)) {
				return fmt.Errorf("predicate group %d not strictly (S,O)-sorted", i)
			}
		}
	}
	// Boundary index: sorted (Local, Pred, To), every entry cross-shard
	// with the precomputed remote residue.
	for i, e := range p.boundary {
		if int(e.Local) >= nLocal {
			return fmt.Errorf("boundary entry %d has local index beyond shard size", i)
		}
		if rs := int(e.To) % p.k; rs == p.shard || rs != int(e.Remote) {
			return fmt.Errorf("boundary entry %d has wrong remote residue", i)
		}
		if i > 0 {
			a, b := p.boundary[i-1], e
			if b.Local < a.Local ||
				(b.Local == a.Local && (b.Pred < a.Pred || (b.Pred == a.Pred && b.To <= a.To))) {
				return fmt.Errorf("boundary not strictly (Local,Pred,To)-sorted at %d", i)
			}
		}
	}
	// Entities: ascending global IDs owned by this shard.
	for i, id := range p.entities {
		if int(id)%p.k != p.shard {
			return fmt.Errorf("entity %d not owned by shard %d", id, p.shard)
		}
		if int(id)/p.k >= nLocal {
			return fmt.Errorf("entity %d beyond shard size", id)
		}
		if i > 0 && id <= p.entities[i-1] {
			return fmt.Errorf("entities not strictly ascending at %d", i)
		}
	}
	return nil
}
