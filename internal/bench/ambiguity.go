package bench

import (
	"fmt"

	"gqa/internal/rdf"
	"gqa/internal/store"
)

// AmbiguousKB returns the mini-DBpedia augmented with m distractor
// entities that all carry the label "Philadelphia" and participate in
// plausible playForTeam subgraphs. It recreates, at a controllable
// density, the ambiguity DBpedia exhibits for the paper's running example:
// the mention "Philadelphia" then has 3+m candidates, all of which pass
// neighborhood pruning, so both engines must do real disambiguation work.
//
// The correct answer is unaffected: no distractor is starred in by an
// actor married to anyone, so the top match still binds the film.
func AmbiguousKB(m int) (*store.Graph, error) {
	g, err := BuildKB()
	if err != nil {
		return nil, err
	}
	typ := rdf.NewIRI(rdf.RDFType)
	lbl := rdf.NewIRI(rdf.RDFSLabel)
	playForTeam := rdf.Ontology("playForTeam")
	for i := 0; i < m; i++ {
		team := rdf.Resource(fmt.Sprintf("Philadelphia_Distractor_%03d", i))
		player := rdf.Resource(fmt.Sprintf("Distractor_Player_%03d", i))
		coach := rdf.Resource(fmt.Sprintf("Distractor_Coach_%03d", i))
		triples := []rdf.Triple{
			rdf.T(team, typ, rdf.Ontology("BasketballTeam")),
			rdf.T(team, lbl, rdf.NewLiteral("Philadelphia")),
			rdf.T(player, playForTeam, team),
			rdf.T(player, typ, rdf.Ontology("Person")),
			rdf.T(coach, playForTeam, team),
			rdf.T(coach, typ, rdf.Ontology("Person")),
			// Shared hub edges give the distractors overlapping neighbor
			// sets, so pairwise coherence computations are non-trivial.
			rdf.T(team, rdf.Ontology("locationCity"), rdf.Resource("Philadelphia")),
		}
		if err := g.AddAll(triples); err != nil {
			return nil, err
		}
		// A second ambiguous mention: m distractor persons also labeled
		// "Antonio Banderas", each starring in a distractor film. With two
		// ambiguous mentions in one question, DEANNA's disambiguation
		// graph has Θ(m²) coherence pairs.
		clone := rdf.Resource(fmt.Sprintf("Antonio_Banderas_Distractor_%03d", i))
		film := rdf.Resource(fmt.Sprintf("Distractor_Film_%03d", i))
		triples = []rdf.Triple{
			rdf.T(clone, lbl, rdf.NewLiteral("Antonio Banderas")),
			rdf.T(clone, typ, rdf.Ontology("Person")),
			rdf.T(film, rdf.Ontology("starring"), clone),
			rdf.T(film, typ, rdf.Ontology("Film")),
		}
		if err := g.AddAll(triples); err != nil {
			return nil, err
		}
	}
	return g, nil
}
