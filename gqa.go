// Package gqa is a graph data-driven natural-language question answering
// engine over RDF, reproducing Zou et al., "Natural Language Question
// Answering over RDF — A Graph Data Driven Approach" (SIGMOD 2014).
//
// The engine answers questions like "Who was married to an actor that
// played in Philadelphia?" directly against an RDF graph. Instead of
// disambiguating the question into a single SPARQL query up front, it
// builds a semantic query graph that keeps every candidate meaning of
// every phrase and lets subgraph matching over the data decide: a
// candidate mapping is correct exactly when a matching subgraph exists.
//
// # Quick start
//
//	sys, err := gqa.LoadSystem(graphFile, dictFile)
//	...
//	ans, err := sys.Answer("Who is the mayor of Berlin?")
//	fmt.Println(ans.Labels) // [Klaus Wowereit]
//
// Use BenchmarkSystem for a self-contained engine over the bundled
// mini-DBpedia knowledge base with a freshly mined paraphrase dictionary.
//
// The deeper layers are importable individually for advanced use:
// internal/store (the triple store), internal/dict (Algorithm 1 offline
// mining), internal/nlp (the dependency parser), internal/core (semantic
// query graphs and top-k matching), internal/sparql (a SPARQL subset), and
// internal/deanna (the DEANNA joint-disambiguation baseline).
package gqa

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"gqa/internal/bench"
	"gqa/internal/core"
	"gqa/internal/dict"
	"gqa/internal/flight"
	"gqa/internal/obs"
	"gqa/internal/qcache"
	"gqa/internal/rdf"
	"gqa/internal/sparql"
	"gqa/internal/store"
)

// Options configures a System.
type Options struct {
	// TopK is the number of distinct match scores retained (default 10,
	// as in the paper's experiments).
	TopK int
	// MaxCandidates caps each argument's entity-linking candidate list
	// (default 10).
	MaxCandidates int
	// DisableHeuristicRules turns off the four argument heuristics of
	// §4.1.2 (the Table 9 ablation).
	DisableHeuristicRules bool
	// EnableAggregation turns on the counting/superlative extension (the
	// paper's future work). Superlative adjectives are interpreted via
	// RegisterSuperlative.
	EnableAggregation bool
	// Parallelism is the number of worker goroutines the top-k subgraph
	// search may use per question. Zero means GOMAXPROCS; one forces the
	// sequential search. Answers are identical at every setting — parallel
	// output is canonically ordered to be byte-identical to sequential.
	Parallelism int
	// Shards partitions the frozen store into K vertex-hash shards, each
	// with its own CSR snapshot, boundary index, and mutation generation;
	// the matcher then scatters each TA round's seeds across per-shard
	// groups and gathers at the round barrier. Answers, explain output, and
	// match statistics are byte-identical at every shard count; what
	// changes is incremental cost — a mutation re-freezes only the shards
	// it touched. Zero or one keeps the monolithic snapshot; negative
	// values are treated as zero, and counts above the vertex count are
	// clamped to it (empty residue classes would only add merge overhead).
	Shards int
	// Budget bounds the resources each Answer/Query call may consume
	// (wall-clock timeout, search steps, candidate expansions, SPARQL
	// rows). The zero value means unlimited — identical behavior to an
	// unbudgeted engine. See AnswerContext for the degradation contract.
	Budget Budget
	// Cache configures the generation-aware answer cache. The zero value
	// disables caching entirely — bit-identical behavior to the uncached
	// engine. See the Caching section of the README for the key structure
	// and invalidation contract.
	Cache CacheConfig
	// Flight is the flight recorder wide events are emitted to: one
	// structured event per answered question, plus tail-sampled trace
	// retention (see internal/flight and gqa-serve's /debug/flight/*
	// endpoints). Nil disables recording at zero cost — the exact
	// unrecorded code path, like a nil trace.
	Flight *flight.Recorder
}

// CacheConfig sizes the answer cache (see Options.Cache and SetCache).
type CacheConfig struct {
	// Entries is the maximum number of cached results (answers and SPARQL
	// result sets share the capacity). Zero disables caching.
	Entries int
}

// System is a ready-to-query Q/A engine: an RDF graph, a paraphrase
// dictionary, and the online pipeline. Safe for concurrent use once built.
type System struct {
	graph  *store.Graph
	dict   *dict.Dictionary
	core   *core.System
	budget Budget
	cache  *qcache.Cache
	flight *flight.Recorder
	// cacheSalt invalidates cached answers on engine mutations the graph
	// generation cannot see: dictionary replacement (MineDictionary) and
	// superlative registration both change answers without touching a
	// triple, so each bump retires every cached entry via the key.
	cacheSalt atomic.Uint64
}

// NewSystem assembles a System from a loaded graph and dictionary. A nil
// dictionary starts empty (mine one with MineDictionary).
//
// The graph is frozen here (see store.Graph.Freeze): the facade serves
// every question and query from the immutable CSR snapshot, and linker
// construction below already indexes through it. Mutating the graph after
// construction invalidates the snapshot; the next Answer/Query call
// re-freezes at the new mutation generation.
func NewSystem(g *store.Graph, d *dict.Dictionary, opts Options) *System {
	if d == nil {
		d = dict.New()
	}
	if opts.Shards > 1 {
		g.SetShards(opts.Shards)
	}
	g.Freeze()
	return &System{
		graph:  g,
		dict:   d,
		budget: opts.Budget,
		cache:  qcache.New(opts.Cache.Entries),
		flight: opts.Flight,
		core: core.NewSystem(g, d, core.Options{
			TopK:                  opts.TopK,
			MaxVertexCandidates:   opts.MaxCandidates,
			DisableHeuristicRules: opts.DisableHeuristicRules,
			EnableAggregation:     opts.EnableAggregation,
			Parallelism:           opts.Parallelism,
			Budget:                opts.Budget.limits(),
		}),
	}
}

// SetAggregation toggles the counting/superlative extension at runtime.
func (s *System) SetAggregation(on bool) { s.core.Opts.EnableAggregation = on }

// SetParallelism adjusts the matcher worker count at runtime (see
// Options.Parallelism). Not safe to call concurrently with Answer.
func (s *System) SetParallelism(p int) { s.core.Opts.Parallelism = p }

// SetShards re-partitions the frozen store into k vertex-hash shards (see
// Options.Shards; k ≤ 1 restores the monolithic snapshot) and freezes at
// the new layout so the first question pays no freeze. The binaries use it
// to honor their -shards flag over systems built with default options.
// Answers are byte-identical at every shard count. The requested count is
// validated like Options.Shards (negative → monolithic, clamped to the
// vertex count); the effective count is returned. Not safe to call
// concurrently with Answer.
func (s *System) SetShards(k int) int {
	k = s.graph.SetShards(k)
	s.graph.Freeze()
	return k
}

// SetCache replaces the answer cache with a fresh one holding up to
// entries results (zero disables caching — the exact uncached code path).
// The binaries use it to honor their -cache flag over systems built with
// default options. Not safe to call concurrently with Answer.
func (s *System) SetCache(entries int) { s.cache = qcache.New(entries) }

// SetFlight installs (or, with nil, removes) the flight recorder wide
// events are emitted to — the runtime form of Options.Flight. Not safe to
// call concurrently with Answer.
func (s *System) SetFlight(r *flight.Recorder) { s.flight = r }

// Flight returns the installed flight recorder (nil when disabled); the
// serving layer mounts its /debug/flight/* endpoints over it.
func (s *System) Flight() *flight.Recorder { return s.flight }

// RegisterSuperlative teaches the aggregation extension how to interpret a
// superlative adjective: rank candidate answers by the numeric object of
// predIRI, taking the maximum (max=true: "oldest") or minimum ("youngest").
func (s *System) RegisterSuperlative(adjective, predIRI string, max bool) bool {
	id, ok := s.graph.LookupIRI(predIRI)
	if !ok {
		return false
	}
	s.core.RegisterSuperlative(adjective, id, max)
	s.cacheSalt.Add(1)
	return true
}

// LoadSystem reads an N-Triples graph and an encoded paraphrase dictionary
// (the gqa-mine output format) and assembles a System with default
// options.
func LoadSystem(graph, dictionary io.Reader) (*System, error) {
	g := store.New()
	if err := g.Load(graph); err != nil {
		return nil, fmt.Errorf("gqa: loading graph: %w", err)
	}
	d, err := dict.Decode(dictionary, g)
	if err != nil {
		return nil, fmt.Errorf("gqa: loading dictionary: %w", err)
	}
	return NewSystem(g, d, Options{}), nil
}

// BenchmarkSystem builds a self-contained System over the bundled
// mini-DBpedia knowledge base, mining its paraphrase dictionary on the
// spot (Algorithm 1). It is the zero-setup way to try the engine.
func BenchmarkSystem() (*System, error) {
	g, err := bench.BuildKB()
	if err != nil {
		return nil, err
	}
	d, _, err := bench.BuildDictionary(g)
	if err != nil {
		return nil, err
	}
	return NewSystem(g, d, Options{}), nil
}

// MineDictionary runs the offline stage (Algorithm 1) over the system's
// graph with the given relation-phrase support sets and replaces the
// system's dictionary with the result.
func (s *System) MineDictionary(sets []dict.SupportSet, maxPathLen, topK int) {
	d, _ := dict.Mine(s.graph, sets, dict.MineOptions{MaxPathLen: maxPathLen, TopK: topK})
	s.dict = d
	s.core.Dict = d
	s.cacheSalt.Add(1)
}

// Metrics returns a point-in-time snapshot of every pipeline metric —
// counters, gauges, and histogram states, keyed by metric name with its
// rendered label set. Metrics are process-wide (all Systems share one
// registry, as all questions share one process).
func (s *System) Metrics() map[string]any {
	s.cache.SyncGauge()
	return obs.Default.Snapshot()
}

// WriteMetrics writes every pipeline metric in the Prometheus text
// exposition format — the payload of gqa-serve's /metrics endpoint,
// exposed here so any host process can mount its own scrape handler.
func (s *System) WriteMetrics(w io.Writer) error {
	// Scrape-time refresh for gauges whose owner is replaceable (SetCache):
	// the cache reports its own occupancy instead of tracking deltas that
	// would outlive a swapped-out instance.
	s.cache.SyncGauge()
	return obs.Default.WritePrometheus(w)
}

// Graph exposes the underlying triple store (read-only use expected).
func (s *System) Graph() *store.Graph { return s.graph }

// Dictionary exposes the paraphrase dictionary.
func (s *System) Dictionary() *dict.Dictionary { return s.dict }

// Answer holds the outcome of one question.
type Answer struct {
	// Labels are the human-readable answers, best first.
	Labels []string
	// IRIs are the answer terms in N-Triples syntax, aligned with Labels.
	IRIs []string
	// Boolean is set for yes/no questions.
	Boolean *bool
	// OK reports whether the engine produced an answer.
	OK bool
	// Failure explains an unanswered question: "aggregation",
	// "entity-linking", "relation-extraction", "no-match", or "".
	Failure string
	// QueryGraph renders the semantic query graph Q^S built for the
	// question — the structural representation of the query intention.
	QueryGraph string
	// SPARQL is the fully disambiguated SPARQL query corresponding to the
	// best match (Algorithm 3's "top-k SPARQL queries" artifact), when one
	// exists. It evaluates to the same answers on the same graph and can
	// be exported to any SPARQL endpoint.
	SPARQL string
	// Degraded is set when a budget (Options.Budget or the caller's
	// context) ran out before the search completed: "deadline",
	// "canceled", "steps", or "candidates". The answer then reflects the
	// best partial top-k found in time — possibly empty — rather than the
	// full search. An answer produced under a load-shedding tier
	// (AnswerShed) carries a "shed:tierN" prefix: alone when the search
	// still completed, joined as "shed:tierN/steps" when the shrunken
	// budget cut it short. Empty for a complete, trustworthy answer served
	// at full budget.
	Degraded string
	// ShedTier is the load-shedding tier the pipeline ran at (see
	// AnswerShed and Budget.Shed): 0 for full-budget service, 1–3 under
	// graded overload. Cache hits report 0 — they cost no pipeline work,
	// so no shedding applied.
	ShedTier int
	// Understanding and Total are the stage timings of Figure 6.
	Understanding time.Duration
	Total         time.Duration
	// Trace is the question's span tree — per-stage timings and counters
	// down to individual matcher rounds — when the call was traced
	// (AnswerTraced, ExplainContext, or a context carrying obs.WithTrace).
	// Nil on untraced calls: tracing is strictly opt-in and the disabled
	// path costs nothing. Render it with Trace.Tree() or Trace.JSON().
	Trace *obs.Trace
	// TraceID is the request's correlation ID: the same value the serving
	// layer returns in the X-Gqa-Trace-Id header, the flight recorder logs
	// on the wide event, and /debug/flight/trace/<id> resolves. Empty when
	// the call was neither traced nor flight-recorded.
	TraceID string
}

// Answer runs the full online pipeline on a natural-language question.
// Panics in the pipeline surface as *PipelineError; use AnswerContext to
// additionally bound the work with a deadline.
func (s *System) Answer(question string) (*Answer, error) {
	return s.AnswerContext(context.Background(), question)
}

// buildAnswer converts a core result into the public Answer shape.
func (s *System) buildAnswer(res *core.Result) *Answer {
	out := &Answer{
		Boolean:       res.Boolean,
		Degraded:      res.Degraded,
		Understanding: res.Timing.Understanding,
		Total:         res.Timing.Total,
	}
	if res.Query != nil {
		out.QueryGraph = res.Query.String()
	}
	if res.Failure != core.FailureNone {
		out.Failure = res.Failure.String()
		return out
	}
	out.OK = res.Boolean != nil || len(res.Answers) > 0 || res.Count != nil
	for _, id := range res.Answers {
		out.Labels = append(out.Labels, s.graph.LabelOf(id))
		out.IRIs = append(out.IRIs, s.graph.Term(id).String())
	}
	if res.Count != nil {
		out.Labels = append(out.Labels, fmt.Sprintf("%d", *res.Count))
		out.IRIs = append(out.IRIs, fmt.Sprintf(`"%d"`, *res.Count))
	}
	if len(res.Matches) > 0 && res.Query != nil {
		if sq, err := core.ResolvedSPARQL(s.graph, res.Query, &res.Matches[0]); err == nil {
			out.SPARQL = sq.String()
		}
	}
	return out
}

// Query evaluates a SPARQL query (SELECT/ASK over basic graph patterns)
// against the graph — the power-user path next to natural language.
// Panics surface as *PipelineError; use QueryContext to bound the work.
func (s *System) Query(query string) (*sparql.Result, error) {
	return s.QueryContext(context.Background(), query)
}

// Explain answers a question and additionally renders each top match:
// which entities and predicate paths realized the query graph — the
// resolved disambiguation of §4.2.1.
func (s *System) Explain(question string) (*Answer, []string, error) {
	return s.ExplainContext(context.Background(), question)
}

// ExplainContext is Explain under a context (deadline, cancellation) and
// the system's Budget. The explain lines are read back from the answer's
// trace — the pipeline records one "match" span per top match with the
// rendered disambiguation as its "render" attribute — so the explain
// output and the trace output are the same object and cannot drift.
func (s *System) ExplainContext(ctx context.Context, question string) (ans *Answer, lines []string, err error) {
	defer recoverPipeline("explain", question, &err)
	ans, err = s.AnswerTraced(ctx, question)
	if err != nil {
		return nil, nil, err
	}
	return ans, ans.Trace.FindAttrs("match", "render"), nil
}

// ErrNoAnswer is a sentinel some callers prefer over inspecting Failure.
var ErrNoAnswer = errors.New("gqa: no answer found")

// SaveGraph serializes a graph as N-Triples, sorted deterministically.
func SaveGraph(w io.Writer, g *store.Graph) error {
	triples := g.Triples()
	sort.Slice(triples, func(i, j int) bool { return triples[i].Compare(triples[j]) < 0 })
	return rdf.Write(w, triples)
}

// SaveSnapshot writes the graph in the compact binary snapshot format,
// which loads an order of magnitude faster than N-Triples.
func SaveSnapshot(w io.Writer, g *store.Graph) error { return g.Snapshot(w) }

// LoadSystemSnapshot assembles a System from a binary graph snapshot and
// an encoded dictionary.
func LoadSystemSnapshot(snapshot, dictionary io.Reader) (*System, error) {
	g, err := store.LoadSnapshot(snapshot)
	if err != nil {
		return nil, fmt.Errorf("gqa: loading snapshot: %w", err)
	}
	d, err := dict.Decode(dictionary, g)
	if err != nil {
		return nil, fmt.Errorf("gqa: loading dictionary: %w", err)
	}
	return NewSystem(g, d, Options{}), nil
}

// SaveFrozenSnapshot writes the graph's frozen CSR snapshot in the GQAFRZ1
// format (freezing first if needed). Unlike SaveSnapshot's interchange
// format, the frozen format serializes the query-ready arrays themselves,
// so loading it skips interning, sorting, and the freeze entirely — the
// instant-cold-start path for gqa-serve.
func SaveFrozenSnapshot(w io.Writer, g *store.Graph) error { return store.SaveFrozen(w, g) }

// LoadSystemFrozen assembles a System from a GQAFRZ1 frozen snapshot and an
// encoded dictionary. The returned system is immediately servable: the
// snapshot arrives validated and pre-installed at its saved mutation
// generation (so generation-keyed cache entries remain coherent), and the
// first Freeze is a pointer load.
func LoadSystemFrozen(frozen, dictionary io.Reader) (*System, error) {
	g, err := store.LoadFrozen(frozen)
	if err != nil {
		return nil, fmt.Errorf("gqa: loading frozen snapshot: %w", err)
	}
	d, err := dict.Decode(dictionary, g)
	if err != nil {
		return nil, fmt.Errorf("gqa: loading dictionary: %w", err)
	}
	return NewSystem(g, d, Options{}), nil
}
