package sparql

import "testing"

// FuzzParseSPARQL: the parser must never panic; successful parses must
// render to text that reparses to the same rendering (printing fixed
// point).
func FuzzParseSPARQL(f *testing.F) {
	f.Add(`SELECT ?x WHERE { ?x ?p ?o }`)
	f.Add(`SELECT DISTINCT ?x WHERE { ?x a dbo:Film . FILTER(?x != dbr:A) } ORDER BY DESC(?x) LIMIT 3`)
	f.Add(`ASK { dbr:A dbo:p dbr:B }`)
	f.Add(`PREFIX e: <http://e/> SELECT * WHERE { e:a e:b "lit"@en }`)
	f.Add(`garbage {{{`)
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendering of %q does not reparse: %v\n%s", src, err, rendered)
		}
		if q2.String() != rendered {
			t.Fatalf("unstable rendering:\n%s\n%s", rendered, q2.String())
		}
	})
}
