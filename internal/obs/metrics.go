package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one constant key="value" pair attached to a metric series.
type Label struct {
	Key, Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// TimeBuckets are the default latency histogram bounds, in seconds:
// 100µs … 10s in a coarse exponential ladder. Question answering on the
// bundled KBs sits in the 100µs–100ms band; the upper decades catch
// degraded or pathological questions.
var TimeBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// CountBuckets are default bounds for count-valued histograms (candidate
// list sizes, rounds, rows).
var CountBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 10000}

// metric is the common behaviour of every registered series.
type metric interface {
	meta() *metricMeta
	// writeSeries appends the series' exposition lines (no HELP/TYPE).
	writeSeries(b *strings.Builder)
	// snapshotValue returns the JSON-dump value of the series.
	snapshotValue() any
}

type metricMeta struct {
	name   string
	help   string
	kind   string // "counter", "gauge", "histogram"
	labels []Label
}

// key returns the registry key: the name plus the rendered label set.
func (m *metricMeta) key() string { return m.name + renderLabels(m.labels, "", 0) }

// Registry holds a set of metrics. All methods are safe for concurrent
// use; metric updates themselves are single atomic operations and take no
// registry lock.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]metric
}

// Default is the process-wide registry exposed by gqa-serve's /metrics.
var Default = NewRegistry()

// NewRegistry returns an empty registry (tests use private ones).
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// register returns the existing metric under meta's key or installs fresh.
// Re-registering a name with a different kind is a programming error.
func (r *Registry) register(m *metricMeta, fresh func() metric) metric {
	k := m.key()
	r.mu.RLock()
	got, ok := r.metrics[k]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		if got, ok = r.metrics[k]; !ok {
			got = fresh()
			r.metrics[k] = got
		}
		r.mu.Unlock()
	}
	if got.meta().kind != m.kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", m.name, m.kind, got.meta().kind))
	}
	return got
}

// Counter registers (or returns the existing) monotonically increasing
// counter under name with the given constant labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := &metricMeta{name: name, help: help, kind: "counter", labels: labels}
	return r.register(m, func() metric { return &Counter{m: m} }).(*Counter)
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := &metricMeta{name: name, help: help, kind: "gauge", labels: labels}
	return r.register(m, func() metric { return &Gauge{m: m} }).(*Gauge)
}

// FloatGauge registers (or returns the existing) float-valued gauge under
// name. It renders with TYPE gauge; use it for ratios and quantiles where
// an integer gauge would lose everything after the decimal point.
func (r *Registry) FloatGauge(name, help string, labels ...Label) *FloatGauge {
	m := &metricMeta{name: name, help: help, kind: "gauge", labels: labels}
	return r.register(m, func() metric { return &FloatGauge{m: m} }).(*FloatGauge)
}

// Histogram registers (or returns the existing) fixed-bucket histogram
// under name. Buckets are upper bounds in ascending order; an implicit
// +Inf bucket is always appended. Nil buckets mean TimeBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = TimeBuckets
	}
	m := &metricMeta{name: name, help: help, kind: "histogram", labels: labels}
	return r.register(m, func() metric {
		return &Histogram{m: m, bounds: buckets, counts: make([]atomic.Int64, len(buckets)+1)}
	}).(*Histogram)
}

// sorted returns the metrics ordered by name, then label signature, so
// series of one name stay adjacent under a single HELP/TYPE block.
func (r *Registry) sorted() []metric {
	r.mu.RLock()
	out := make([]metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		mi, mj := out[i].meta(), out[j].meta()
		if mi.name != mj.name {
			return mi.name < mj.name
		}
		return mi.key() < mj.key()
	})
	return out
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	lastName := ""
	for _, m := range r.sorted() {
		mm := m.meta()
		if mm.name != lastName {
			lastName = mm.name
			b.WriteString("# HELP ")
			b.WriteString(mm.name)
			b.WriteByte(' ')
			b.WriteString(escapeHelp(mm.help))
			b.WriteByte('\n')
			b.WriteString("# TYPE ")
			b.WriteString(mm.name)
			b.WriteByte(' ')
			b.WriteString(mm.kind)
			b.WriteByte('\n')
		}
		m.writeSeries(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Snapshot returns a point-in-time map of every series — counters and
// gauges as int64, histograms as {count, sum, buckets} objects. The map
// keys are the series keys (name plus rendered labels); the result
// marshals directly to the expvar-style JSON dump.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, m := range r.sorted() {
		out[m.meta().key()] = m.snapshotValue()
	}
	return out
}

// WriteJSON renders the Snapshot as indented JSON with sorted keys (the
// expvar-style /debug/metrics dump).
func (r *Registry) WriteJSON(w io.Writer) error {
	ms := r.sorted()
	var b strings.Builder
	b.WriteString("{\n")
	for i, m := range ms {
		fmt.Fprintf(&b, "  %s: %s", strconv.Quote(m.meta().key()), jsonValue(m.snapshotValue()))
		if i < len(ms)-1 {
			b.WriteByte(',')
		}
		b.WriteByte('\n')
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// jsonValue renders a snapshot value deterministically (sorted bucket
// keys), avoiding encoding/json's map-order dependence on floats.
func jsonValue(v any) string {
	switch x := v.(type) {
	case int64:
		return strconv.FormatInt(x, 10)
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(strconv.Quote(k))
			b.WriteString(": ")
			b.WriteString(jsonValue(x[k]))
		}
		b.WriteByte('}')
		return b.String()
	case float64:
		return formatFloat(x)
	default:
		return fmt.Sprintf("%v", x)
	}
}

// ------------------------------------------------------------------ counter

// Counter is a monotonically increasing value. Inc/Add are one atomic op.
type Counter struct {
	m *metricMeta
	v atomic.Int64
}

func (c *Counter) meta() *metricMeta { return c.m }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 for the counter contract to hold).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) writeSeries(b *strings.Builder) {
	b.WriteString(c.m.name)
	b.WriteString(renderLabels(c.m.labels, "", 0))
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(c.v.Load(), 10))
	b.WriteByte('\n')
}

func (c *Counter) snapshotValue() any { return c.v.Load() }

// -------------------------------------------------------------------- gauge

// Gauge is an instantaneous value (pool occupancy, sizes).
type Gauge struct {
	m *metricMeta
	v atomic.Int64
}

func (g *Gauge) meta() *metricMeta { return g.m }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) writeSeries(b *strings.Builder) {
	b.WriteString(g.m.name)
	b.WriteString(renderLabels(g.m.labels, "", 0))
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(g.v.Load(), 10))
	b.WriteByte('\n')
}

func (g *Gauge) snapshotValue() any { return g.v.Load() }

// -------------------------------------------------------------- float gauge

// FloatGauge is an instantaneous float64 value (quantiles, burn rates).
type FloatGauge struct {
	m *metricMeta
	v atomic.Uint64 // float64 bits
}

func (g *FloatGauge) meta() *metricMeta { return g.m }

// Set stores v.
func (g *FloatGauge) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

func (g *FloatGauge) writeSeries(b *strings.Builder) {
	b.WriteString(g.m.name)
	b.WriteString(renderLabels(g.m.labels, "", 0))
	b.WriteByte(' ')
	b.WriteString(formatFloat(g.Value()))
	b.WriteByte('\n')
}

func (g *FloatGauge) snapshotValue() any { return g.Value() }

// ---------------------------------------------------------------- histogram

// Histogram is a fixed-bucket distribution. Observe is a bucket scan plus
// two atomic ops (bucket count and total count) and one CAS loop (float
// sum) — no locks, no allocation.
type Histogram struct {
	m      *metricMeta
	bounds []float64      // ascending upper bounds; counts has one extra +Inf slot
	counts []atomic.Int64 // per-bucket (non-cumulative) observation counts
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

func (h *Histogram) meta() *metricMeta { return h.m }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Counts returns a copy of the per-bucket (non-cumulative) observation
// counts, the +Inf bucket last — the raw material for windowed quantiles
// (snapshot now, subtract a snapshot from window-start, feed the delta to
// QuantileFromCounts).
func (h *Histogram) Counts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Bounds returns the histogram's finite upper bounds (shared, do not
// mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of everything observed so
// far, interpolating linearly within the owning bucket. Observations that
// landed in the +Inf bucket clamp to the largest finite bound — the
// histogram cannot say more. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	return QuantileFromCounts(h.bounds, h.Counts(), q)
}

// QuantileFromCounts is Histogram.Quantile over an explicit bucket-count
// vector (len(bounds)+1 entries, +Inf last): the shared implementation the
// SLO tracker uses on windowed count deltas so rolling quantiles need no
// second sampling structure.
func QuantileFromCounts(bounds []float64, counts []int64, q float64) float64 {
	total := int64(0)
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	// rank is the (fractional) number of observations at or below the
	// quantile point; walk the cumulative counts to its owning bucket.
	rank := q * float64(total)
	cum := int64(0)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(bounds) {
				// +Inf bucket: clamp to the largest finite bound.
				return bounds[len(bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			hi := bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return bounds[len(bounds)-1]
}

func (h *Histogram) writeSeries(b *strings.Builder) {
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		b.WriteString(h.m.name)
		b.WriteString("_bucket")
		b.WriteString(renderLabels(h.m.labels, "le", bound))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(cum, 10))
		b.WriteByte('\n')
	}
	cum += h.counts[len(h.bounds)].Load()
	b.WriteString(h.m.name)
	b.WriteString("_bucket")
	b.WriteString(renderLabels(h.m.labels, "le", math.Inf(1)))
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(cum, 10))
	b.WriteByte('\n')

	b.WriteString(h.m.name)
	b.WriteString("_sum")
	b.WriteString(renderLabels(h.m.labels, "", 0))
	b.WriteByte(' ')
	b.WriteString(formatFloat(h.Sum()))
	b.WriteByte('\n')
	b.WriteString(h.m.name)
	b.WriteString("_count")
	b.WriteString(renderLabels(h.m.labels, "", 0))
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(h.count.Load(), 10))
	b.WriteByte('\n')
}

func (h *Histogram) snapshotValue() any {
	buckets := make(map[string]any, len(h.bounds)+1)
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		buckets[formatFloat(bound)] = cum
	}
	cum += h.counts[len(h.bounds)].Load()
	buckets["+Inf"] = cum
	return map[string]any{
		"count":   h.count.Load(),
		"sum":     h.Sum(),
		"buckets": buckets,
	}
}

// -------------------------------------------------------------- rendering

// renderLabels renders {k="v",…}, appending an le label when leKey is set.
// Returns "" for an empty label set with no le.
func renderLabels(labels []Label, leKey string, le float64) string {
	if len(labels) == 0 && leKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if leKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leKey)
		b.WriteString(`="`)
		b.WriteString(formatFloat(le))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders floats the way Prometheus expects: shortest exact
// decimal, +Inf spelled literally.
func formatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// escapeLabel escapes a label value per the text format: backslash,
// double-quote, and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text: backslash and newline only.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
