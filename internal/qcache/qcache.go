// Package qcache is the generation-aware answer cache of the serving
// layer: a sharded LRU with in-flight request coalescing.
//
// Real question traffic is heavily repetitive — the same questions arrive
// again and again, and identical questions arrive concurrently. The cache
// exploits both shapes:
//
//   - Repetition: entries are keyed by (normalized input, graph mutation
//     generation, options fingerprint). The generation component (see
//     store.Graph.Generation) makes invalidation free — a mutation bumps
//     the generation, every old key stops matching, and stale entries age
//     out of the LRU without any scan or lock on the mutation path.
//
//   - Concurrency: Do coalesces duplicate in-flight work singleflight
//     style. When N identical keys arrive together, exactly one caller
//     (the leader) runs the computation; the rest block and share its
//     result. The pipeline runs once, the metrics count one question.
//
// The cache stores opaque values; callers own immutability (the facade
// stores deep copies and hands copies out, so no caller can mutate a
// shared answer). Values that depend on the caller's budget rather than
// the data — degraded/truncated answers — must never be cached: compute
// functions report cacheability per result, and an uncacheable result is
// neither stored nor shared with coalesced waiters (each retries under its
// own budget).
package qcache

import (
	"container/list"
	"context"
	"sync"

	"gqa/internal/obs"
)

// Cache traffic metrics, exposed on the default registry (the /metrics
// payload). Process-wide: every cache in the process shares them, like all
// other pipeline metrics.
var (
	hitsTotal = obs.DefaultCounter("gqa_cache_hits_total",
		"Answer-cache lookups served from a stored entry.")
	missesTotal = obs.DefaultCounter("gqa_cache_misses_total",
		"Answer-cache lookups that ran the computation (cache leaders).")
	evictionsTotal = obs.DefaultCounter("gqa_cache_evictions_total",
		"Answer-cache entries evicted by the LRU capacity bound.")
	coalescedTotal = obs.DefaultCounter("gqa_cache_coalesced_total",
		"Lookups that shared an in-flight leader's result instead of recomputing.")
	bypassTotal = obs.DefaultCounter("gqa_cache_bypass_total",
		"Lookups that ran the computation without touching the cache (disabled cache, or a waiter whose context expired).")
	entriesGauge = obs.DefaultGauge("gqa_cache_entries",
		"Answer-cache entries currently stored (refreshed on scrape).")
)

// Outcome reports how one Do call was served.
type Outcome string

const (
	// Hit: the value came from a stored cache entry.
	Hit Outcome = "hit"
	// Miss: this call was the leader — it ran the computation (and stored
	// the result when cacheable).
	Miss Outcome = "miss"
	// Coalesced: the call blocked on an in-flight leader for the same key
	// and shared its result without recomputing.
	Coalesced Outcome = "coalesced"
	// Bypass: the computation ran without touching the cache — either the
	// cache is nil (disabled) or the caller's context expired while
	// waiting on a leader, so it computed under its own budget.
	Bypass Outcome = "bypass"
)

// shardCount bounds lock contention: keys spread over up to this many
// independently locked LRUs.
const shardCount = 16

// Cache is a sharded, fixed-capacity LRU with request coalescing. All
// methods are safe for concurrent use. A nil *Cache is valid and disabled:
// Do computes directly, Len reports 0.
type Cache struct {
	shards []shard
}

type shard struct {
	mu       sync.Mutex
	capacity int
	order    *list.List               // front = most recently used; values are *entry
	byKey    map[string]*list.Element // key → element in order
	inflight map[string]*flight       // key → in-progress leader computation
}

type entry struct {
	key string
	val any
}

// flight is one in-progress leader computation. done is closed when the
// leader finishes; val is shared with waiters only when shared is set (the
// result was cacheable and error-free).
type flight struct {
	done   chan struct{}
	val    any
	shared bool
}

// New returns a cache holding up to entries values (rounded up to a
// multiple of the shard count). entries <= 0 returns nil — the disabled
// cache, on which every method is a no-op.
func New(entries int) *Cache {
	if entries <= 0 {
		return nil
	}
	n := min(shardCount, entries)
	c := &Cache{shards: make([]shard, n)}
	per := (entries + n - 1) / n
	for i := range c.shards {
		c.shards[i] = shard{
			capacity: per,
			order:    list.New(),
			byKey:    make(map[string]*list.Element),
			inflight: make(map[string]*flight),
		}
	}
	return c
}

// Len returns the number of stored entries across all shards.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += c.shards[i].order.Len()
		c.shards[i].mu.Unlock()
	}
	return n
}

// SyncGauge publishes the cache's current entry count to the
// gqa_cache_entries gauge. Caches are replaceable (SetCache swaps them at
// runtime), so the owner refreshes the gauge at scrape time instead of the
// cache tracking deltas that would outlive it; a nil cache publishes 0.
func (c *Cache) SyncGauge() {
	entriesGauge.Set(int64(c.Len()))
}

// shard maps a key to its shard by FNV-1a.
func (c *Cache) shard(key string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return &c.shards[h%uint32(len(c.shards))]
}

// Do returns the cached value for key, or runs compute to produce it,
// coalescing concurrent calls for the same key onto one computation.
//
// compute returns (value, cacheable, err). The value is stored — and
// shared with coalesced waiters — only when cacheable is true and err is
// nil; a non-cacheable result (a degraded answer, a truncated row set) is
// returned to its own caller only, and each waiter retries under its own
// budget rather than adopt a result shaped by someone else's.
//
// A waiter whose ctx expires while blocked on a leader stops waiting and
// runs compute itself (Outcome Bypass): the pipeline under an expired
// context degrades promptly, which preserves the engine's degradation
// contract instead of trading it for an unbounded wait.
//
// If compute panics, the panic propagates to the leader's caller; waiters
// see a non-shared flight and retry, so a poisoned key cannot wedge them.
func (c *Cache) Do(ctx context.Context, key string, compute func() (val any, cacheable bool, err error)) (any, Outcome, error) {
	if c == nil {
		bypassTotal.Inc()
		v, _, err := compute()
		return v, Bypass, err
	}
	s := c.shard(key)
	for {
		s.mu.Lock()
		if el, ok := s.byKey[key]; ok {
			s.order.MoveToFront(el)
			v := el.Value.(*entry).val
			s.mu.Unlock()
			hitsTotal.Inc()
			return v, Hit, nil
		}
		if fl, ok := s.inflight[key]; ok {
			s.mu.Unlock()
			select {
			case <-fl.done:
				if fl.shared {
					coalescedTotal.Inc()
					return fl.val, Coalesced, nil
				}
				// The leader's result was uncacheable (degraded) or an
				// error: compute under our own budget. Loop — we may find a
				// stored entry, a new leader, or become the leader.
				continue
			case <-ctx.Done():
				bypassTotal.Inc()
				v, _, err := compute()
				return v, Bypass, err
			}
		}
		return s.lead(key, compute)
	}
}

// lead runs compute as the leader for key. Called with s.mu held; returns
// with it released. The deferred publish also runs when compute panics, so
// waiters are always released.
func (s *shard) lead(key string, compute func() (any, bool, error)) (v any, _ Outcome, err error) {
	fl := &flight{done: make(chan struct{})}
	s.inflight[key] = fl
	s.mu.Unlock()
	missesTotal.Inc()
	cacheable := false
	defer func() {
		fl.val = v
		fl.shared = cacheable && err == nil
		s.mu.Lock()
		delete(s.inflight, key)
		if fl.shared {
			s.insert(key, v)
		}
		s.mu.Unlock()
		close(fl.done)
	}()
	v, cacheable, err = compute()
	return v, Miss, err
}

// insert stores (key, val) at the front, evicting from the back past
// capacity. Caller holds s.mu.
func (s *shard) insert(key string, val any) {
	if el, ok := s.byKey[key]; ok {
		el.Value.(*entry).val = val
		s.order.MoveToFront(el)
		return
	}
	s.byKey[key] = s.order.PushFront(&entry{key: key, val: val})
	for s.order.Len() > s.capacity {
		back := s.order.Back()
		s.order.Remove(back)
		delete(s.byKey, back.Value.(*entry).key)
		evictionsTotal.Inc()
	}
}

// Get returns the stored value for key without computing or coalescing
// (test and introspection hook; it still promotes the entry and counts a
// hit or miss).
func (c *Cache) Get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byKey[key]; ok {
		s.order.MoveToFront(el)
		hitsTotal.Inc()
		return el.Value.(*entry).val, true
	}
	missesTotal.Inc()
	return nil, false
}
