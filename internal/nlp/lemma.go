package nlp

import "strings"

// Lemma returns the dictionary form of a lowercase word given its POS tag.
// Verbs map to their base form, plural nouns to singular; everything else
// is returned unchanged. The paraphrase dictionary and Algorithm 2 match on
// lemmas so that "was married to" finds the relation phrase "be married
// to".
func Lemma(lower, tag string) string {
	if l, ok := irregularVerbLemmas[lower]; ok && (IsVerbTag(tag) || tag == "") {
		return l
	}
	switch {
	case IsVerbTag(tag):
		return verbLemma(lower)
	case tag == "NNS" || tag == "NNPS":
		return nounLemma(lower)
	case tag == "":
		// Untagged (dictionary phrase words): try irregulars of both
		// classes, then verb morphology — relation phrases are stored as
		// base-form verbs.
		if l, ok := irregularVerbLemmas[lower]; ok {
			return l
		}
		if l, ok := irregularNounLemmas[lower]; ok {
			return l
		}
		return verbLemma(lower)
	}
	return lower
}

func verbLemma(w string) string {
	if l, ok := irregularVerbLemmas[w]; ok {
		return l
	}
	n := len(w)
	switch {
	case strings.HasSuffix(w, "ies") && n > 4:
		return w[:n-3] + "y" // studies → study
	case strings.HasSuffix(w, "sses") || strings.HasSuffix(w, "shes") || strings.HasSuffix(w, "ches") || strings.HasSuffix(w, "xes"):
		return w[:n-2] // passes → pass, watches → watch
	case strings.HasSuffix(w, "oes") && n > 4:
		return w[:n-2] // goes → go
	case strings.HasSuffix(w, "ied") && n > 4:
		return w[:n-3] + "y" // married → marry (also in irregulars)
	case strings.HasSuffix(w, "eed"):
		return w // succeed stays (but "succeeded" handled below)
	case strings.HasSuffix(w, "ed") && n > 3:
		stem := w[:n-2]
		return undouble(restoreE(stem))
	case strings.HasSuffix(w, "ing") && n > 4:
		stem := w[:n-3]
		return undouble(restoreE(stem))
	case strings.HasSuffix(w, "s") && n > 3 && !strings.HasSuffix(w, "ss") && !strings.HasSuffix(w, "us"):
		return w[:n-1] // plays → play
	}
	return w
}

// restoreE adds back a dropped final 'e' for stems like "creat" (created)
// and "produc" (produced). The heuristic: consonant + {c,s,v,z,g,u} or a
// stem ending in a consonant cluster that requires 'e'.
func restoreE(stem string) string {
	if stem == "" {
		return stem
	}
	switch {
	case strings.HasSuffix(stem, "at"), // create, locate, operate, graduate
		strings.HasSuffix(stem, "uc"),                  // produce
		strings.HasSuffix(stem, "ac"),                  // place? (replac)
		strings.HasSuffix(stem, "os"),                  // compose
		strings.HasSuffix(stem, "iv"),                  // live? but "lived" is in irregulars
		strings.HasSuffix(stem, "rv"),                  // serve
		strings.HasSuffix(stem, "ag"),                  // manage
		strings.HasSuffix(stem, "ur"),                  // measure? (measur)
		strings.HasSuffix(stem, "in") && len(stem) > 3, // combine? (combin)
		strings.HasSuffix(stem, "am"):                  // name? (nam) — too short, guarded below
		if len(stem) >= 4 {
			return stem + "e"
		}
	}
	return stem
}

// undouble removes a doubled final consonant left by -ed/-ing suffixation
// (starred → starr → star).
func undouble(stem string) string {
	n := len(stem)
	if n >= 3 && stem[n-1] == stem[n-2] && isConsonant(stem[n-1]) && stem[n-1] != 's' && stem[n-1] != 'l' {
		return stem[:n-1]
	}
	return stem
}

func isConsonant(c byte) bool {
	switch c {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	}
	return c >= 'a' && c <= 'z'
}

func nounLemma(w string) string {
	if l, ok := irregularNounLemmas[w]; ok {
		return l
	}
	n := len(w)
	switch {
	case strings.HasSuffix(w, "ies") && n > 4:
		return w[:n-3] + "y"
	case strings.HasSuffix(w, "ses") || strings.HasSuffix(w, "xes") || strings.HasSuffix(w, "zes") || strings.HasSuffix(w, "ches") || strings.HasSuffix(w, "shes"):
		return w[:n-2]
	case strings.HasSuffix(w, "s") && n > 3 && !strings.HasSuffix(w, "ss") && !strings.HasSuffix(w, "us") && !strings.HasSuffix(w, "is"):
		return w[:n-1]
	}
	return w
}

// LemmatizePhrase lemmatizes every word of a space-separated relation
// phrase ("was married to" → "be marry to"). Dictionary keys and question
// words meet in this normalized space.
func LemmatizePhrase(phrase string) []string {
	words := strings.Fields(strings.ToLower(phrase))
	out := make([]string, len(words))
	for i, w := range words {
		out[i] = Lemma(w, "")
	}
	return out
}
