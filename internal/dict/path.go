// Package dict implements the paraphrase dictionary D of §3: the offline
// mapping from relation phrases ("be married to", "uncle of") to RDF
// predicates or predicate paths, mined from supporting entity pairs with
// the tf-idf weighting of Definition 4 (Algorithm 1).
//
// It also provides the word-level inverted index over relation phrases that
// Algorithm 2 (relation-phrase embedding search) consumes at question time.
package dict

import (
	"fmt"
	"strings"

	"gqa/internal/obs"
	"gqa/internal/store"
)

// followPathCalls counts predicate-path evaluations — the matcher's
// per-edge traversal unit and the dominant cost of query evaluation. One
// atomic op per call; the call itself allocates route state, so the
// counter is noise next to the work it counts.
var followPathCalls = obs.DefaultCounter("gqa_dict_followpath_total",
	"Predicate-path traversals (FollowPath calls) during matching.")

// Step is one edge of a predicate path: the predicate and whether the edge
// is traversed along its direction (Forward) or against it.
type Step struct {
	Pred    store.ID
	Forward bool
}

// Path is a sequence of predicate steps read from arg1 to arg2. A single
// predicate is the length-1 special case (§3). "uncle of" is the motivating
// multi-step example: ⟨hasChild⁻¹, hasChild, …⟩.
type Path []Step

// Key returns a canonical map key for the path.
func (p Path) Key() string {
	var b strings.Builder
	for _, s := range p {
		if s.Forward {
			b.WriteByte('+')
		} else {
			b.WriteByte('-')
		}
		fmt.Fprintf(&b, "%d.", s.Pred)
	}
	return b.String()
}

// Reverse returns the path read from arg2 to arg1.
func (p Path) Reverse() Path {
	out := make(Path, len(p))
	for i, s := range p {
		out[len(p)-1-i] = Step{Pred: s.Pred, Forward: !s.Forward}
	}
	return out
}

// String renders the path with predicate local names, marking inverse steps
// with ⁻¹, e.g. "<hasChild>⁻¹·<hasChild>".
func (p Path) Render(g *store.Graph) string {
	parts := make([]string, len(p))
	for i, s := range p {
		name := "<" + g.Term(s.Pred).LocalName() + ">"
		if !s.Forward {
			name += "⁻¹"
		}
		parts[i] = name
	}
	return strings.Join(parts, "·")
}

// SimplePathsDFS enumerates every simple path (no repeated vertex) between
// from and to of length ≤ maxLen, ignoring edge direction but recording it
// per step. It is the straightforward reference algorithm; the miner uses
// SimplePathsBidirectional, which must agree with it (property-tested).
//
// Paths are returned as predicate-direction sequences; distinct vertex
// routes yielding the same sequence are deduplicated, matching the paper's
// treatment of PS(rel) as a set of predicate path patterns per pair.
func SimplePathsDFS(g *store.Graph, from, to store.ID, maxLen int) []Path {
	if maxLen <= 0 || from == to {
		return nil
	}
	seen := make(map[string]struct{})
	var out []Path
	onPath := map[store.ID]bool{from: true}
	var cur Path
	var dfs func(v store.ID)
	dfs = func(v store.ID) {
		if len(cur) >= maxLen {
			return
		}
		g.UndirectedNeighbors(v, func(n store.Neighbor) bool {
			if g.IsSchemaPred(n.Pred) {
				return true
			}
			if n.To == to {
				p := append(append(Path{}, cur...), Step{Pred: n.Pred, Forward: n.Forward})
				k := p.Key()
				if _, dup := seen[k]; !dup {
					seen[k] = struct{}{}
					out = append(out, p)
				}
				return true
			}
			if onPath[n.To] {
				return true
			}
			onPath[n.To] = true
			cur = append(cur, Step{Pred: n.Pred, Forward: n.Forward})
			dfs(n.To)
			cur = cur[:len(cur)-1]
			delete(onPath, n.To)
			return true
		})
	}
	dfs(from)
	return out
}

// halfPath is a partial route from one endpoint: the vertex sequence and
// step sequence walked so far.
type halfPath struct {
	verts []store.ID
	steps Path
}

// SimplePathsBidirectional enumerates the same simple paths as
// SimplePathsDFS using a meet-in-the-middle search (§3: "we adopt a
// bi-directional BFS search from vertices v and v′"): routes of length up
// to ⌈maxLen/2⌉ are expanded from both endpoints and joined at meeting
// vertices, discarding joins that repeat a vertex.
func SimplePathsBidirectional(g *store.Graph, from, to store.ID, maxLen int) []Path {
	if maxLen <= 0 || from == to {
		return nil
	}
	fwdDepth := (maxLen + 1) / 2
	bwdDepth := maxLen / 2
	fwd := expandRoutes(g, from, fwdDepth)
	bwd := expandRoutes(g, to, bwdDepth)

	seen := make(map[string]struct{})
	var out []Path
	emit := func(p Path) {
		k := p.Key()
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			out = append(out, p)
		}
	}
	for meet, fRoutes := range fwd {
		bRoutes, ok := bwd[meet]
		if !ok {
			continue
		}
		for _, f := range fRoutes {
			for _, b := range bRoutes {
				if len(f.steps)+len(b.steps) == 0 || len(f.steps)+len(b.steps) > maxLen {
					continue
				}
				if routesIntersect(f, b, meet, from, to) {
					continue
				}
				// b runs to→…→meet; reverse it to meet→…→to.
				p := make(Path, 0, len(f.steps)+len(b.steps))
				p = append(p, f.steps...)
				p = append(p, b.steps.Reverse()...)
				emit(p)
			}
		}
	}
	return out
}

// expandRoutes returns, for every vertex reachable within depth steps, all
// simple routes from start to it (including the empty route to start).
func expandRoutes(g *store.Graph, start store.ID, depth int) map[store.ID][]halfPath {
	out := map[store.ID][]halfPath{
		start: {{verts: []store.ID{start}}},
	}
	frontier := []halfPath{{verts: []store.ID{start}}}
	for d := 0; d < depth; d++ {
		var next []halfPath
		for _, hp := range frontier {
			v := hp.verts[len(hp.verts)-1]
			g.UndirectedNeighbors(v, func(n store.Neighbor) bool {
				if g.IsSchemaPred(n.Pred) {
					return true
				}
				for _, u := range hp.verts {
					if u == n.To {
						return true // not simple
					}
				}
				nhp := halfPath{
					verts: append(append([]store.ID{}, hp.verts...), n.To),
					steps: append(append(Path{}, hp.steps...), Step{Pred: n.Pred, Forward: n.Forward}),
				}
				out[n.To] = append(out[n.To], nhp)
				next = append(next, nhp)
				return true
			})
		}
		frontier = next
	}
	return out
}

// routesIntersect reports whether the two half routes share an internal
// vertex other than the meeting point (which would make the joined path
// non-simple). It also rejects joins where one side passes through the
// other side's endpoint.
func routesIntersect(f, b halfPath, meet, from, to store.ID) bool {
	inF := make(map[store.ID]bool, len(f.verts))
	for _, v := range f.verts {
		inF[v] = true
	}
	for _, v := range b.verts {
		if v == meet {
			continue
		}
		if inF[v] {
			return true
		}
	}
	return false
}

// followPathDedupeScan is the result-set size up to which FollowPath
// dedupes targets by linear scan before switching to a map; most paths
// reach a handful of vertices and never pay a map allocation.
const followPathDedupeScan = 32

// FollowPath returns every vertex reachable from v by walking the path
// (respecting step directions), visiting only simple routes. It is used at
// query time to evaluate predicate-path edges of the semantic query graph.
//
// The walk is a DFS over one shared route buffer (the earlier BFS copied
// the route per frontier state, which dominated matcher allocations). On a
// frozen graph each step is a binary-searched CSR span (see
// store/frozen.go and store/shard.go); the mutable path keeps the
// OutByPred/InByPred hub cache. Target order follows the traversal and is
// not significant; results are a set (first-reached order).
func FollowPath(g *store.Graph, v store.ID, p Path) []store.ID {
	return FollowPathView(g, g.FrozenView(), v, p)
}

// FollowPathView is FollowPath over an explicitly pinned frozen view.
// When view is non-nil every step reads the view only — never the mutable
// graph — so a caller holding a captured View (the sharded matcher, the
// concurrent-mutation tests) walks a consistent frozen surface while the
// graph mutates underneath. A nil view falls back to g's mutable indexes.
func FollowPathView(g *store.Graph, view store.View, v store.ID, p Path) []store.ID {
	followPathCalls.Inc()
	if len(p) == 0 {
		return []store.ID{v}
	}
	sn := view
	route := make([]store.ID, 1, len(p)+1)
	route[0] = v
	var out []store.ID
	var seen map[store.ID]struct{}
	add := func(u store.ID) {
		if seen == nil {
			if len(out) < followPathDedupeScan {
				for _, x := range out {
					if x == u {
						return
					}
				}
				out = append(out, u)
				return
			}
			seen = make(map[store.ID]struct{}, 2*len(out))
			for _, x := range out {
				seen[x] = struct{}{}
			}
		}
		if _, dup := seen[u]; dup {
			return
		}
		seen[u] = struct{}{}
		out = append(out, u)
	}
	var walk func(u store.ID, depth int)
	visit := func(w store.ID, depth int) {
		for _, r := range route {
			if r == w {
				return // not simple
			}
		}
		if depth == len(p)-1 {
			add(w)
			return
		}
		route = append(route, w)
		walk(w, depth+1)
		route = route[:len(route)-1]
	}
	walk = func(u store.ID, depth int) {
		st := p[depth]
		if sn != nil {
			var span []store.Edge
			if st.Forward {
				span = sn.OutPred(u, st.Pred)
			} else {
				span = sn.InPred(u, st.Pred)
			}
			for i := range span {
				visit(span[i].To, depth)
			}
			return
		}
		var ids []store.ID
		if st.Forward {
			ids = g.OutByPred(u, st.Pred)
		} else {
			ids = g.InByPred(u, st.Pred)
		}
		for _, w := range ids {
			visit(w, depth)
		}
	}
	walk(v, 0)
	return out
}

// PathConnects reports whether the path leads from u to w (in the recorded
// direction) or from w to u (reversed) via a simple route — the
// either-orientation edge test Definition 3 needs.
func PathConnects(g *store.Graph, u, w store.ID, p Path) bool {
	return PathConnectsView(g, g.FrozenView(), u, w, p)
}

// PathConnectsView is PathConnects over an explicitly pinned frozen view
// (see FollowPathView for the contract).
func PathConnectsView(g *store.Graph, view store.View, u, w store.ID, p Path) bool {
	for _, dst := range FollowPathView(g, view, u, p) {
		if dst == w {
			return true
		}
	}
	for _, dst := range FollowPathView(g, view, w, p) {
		if dst == u {
			return true
		}
	}
	return false
}
