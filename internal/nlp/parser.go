package nlp

import (
	"errors"
	"fmt"
	"time"

	"gqa/internal/obs"
)

// Parse-stage metrics (§4.1's dependency-tree construction).
var (
	parseTotal = obs.DefaultCounter("gqa_nlp_parse_total",
		"Questions tokenized, tagged, and dependency-parsed.")
	parseErrors = obs.DefaultCounter("gqa_nlp_parse_errors_total",
		"Parses rejected (empty input or an inconsistent tree).")
	parseSeconds = obs.DefaultHistogram("gqa_nlp_parse_seconds",
		"Dependency-parse latency.", nil)
)

// Parse tokenizes, tags and dependency-parses a question, returning its
// dependency tree Y. The grammar is a deterministic cascade over the
// interrogative constructions described in the package comment; it always
// produces a well-formed tree (worst case, unattachable tokens hang off the
// root with the generic "dep" relation, as the Stanford parser also does).
func Parse(question string) (*DepTree, error) {
	start := time.Now()
	parseTotal.Inc()
	toks := Tagged(question)
	if len(toks) == 0 {
		parseErrors.Inc()
		return nil, errors.New("nlp: empty question")
	}
	p := &parser{toks: toks}
	tree := p.parse()
	if err := tree.Validate(); err != nil {
		parseErrors.Inc()
		return nil, fmt.Errorf("nlp: internal parse inconsistency: %w", err)
	}
	parseSeconds.ObserveDuration(time.Since(start))
	return tree, nil
}

// chunk is a base noun phrase: an inclusive token span with a head.
type chunk struct {
	start, end, head int
	wh               bool // contains a wh-word (who / which movies / what …)
}

type parser struct {
	toks    []Token
	tree    *DepTree
	chunks  []chunk
	chunkAt []int // token index → chunk index, or -1
}

func (p *parser) parse() *DepTree {
	p.tree = &DepTree{Nodes: make([]Node, len(p.toks)), Root: -1}
	for i, t := range p.toks {
		p.tree.Nodes[i] = Node{Token: t, Head: -1}
	}
	p.findChunks()
	p.attachChunkInternals()

	// Split off trailing relative clauses, then parse main clause and each
	// relative clause.
	mainEnd, clauses := p.findClauses()
	rootMain := p.parseClause(0, mainEnd, -1)
	p.tree.Root = rootMain
	for _, cl := range clauses {
		crm := p.parseClause(cl.start, cl.end, cl.antecedent)
		if crm >= 0 && cl.antecedent >= 0 {
			p.tree.attach(crm, cl.antecedent, RelRcmod)
		} else if crm >= 0 && crm != rootMain {
			p.tree.attach(crm, rootMain, RelDep)
		}
	}
	// Guarantee a tree: anything still unattached hangs off the root.
	if p.tree.Root < 0 {
		p.tree.Root = 0
	}
	for i := range p.tree.Nodes {
		if i != p.tree.Root && p.tree.Nodes[i].Head == -1 {
			p.tree.attach(i, p.tree.Root, RelDep)
		}
	}
	root := &p.tree.Nodes[p.tree.Root]
	root.Head = -1
	root.Rel = RelRoot
	return p.tree
}

// ---------------------------------------------------------------- chunking

// npInternal reports whether tag may continue an NP chunk.
func npInternal(tag string) bool {
	switch tag {
	case "DT", "PRP$", "WP$", "JJ", "JJR", "JJS", "CD", "NN", "NNS", "NNP", "NNPS", "POS":
		return true
	}
	return false
}

func headCandidate(tag string) bool {
	switch tag {
	case "NN", "NNS", "NNP", "NNPS", "CD", "PRP", "WP", "WDT":
		return true
	}
	return false
}

func (p *parser) findChunks() {
	n := len(p.toks)
	p.chunkAt = make([]int, n)
	for i := range p.chunkAt {
		p.chunkAt[i] = -1
	}
	i := 0
	for i < n {
		t := p.toks[i]
		switch {
		case t.Tag == "WDT" && i+1 < n && npContinues(p.toks, i+1):
			// "which movies", "what country": determiner wh inside NP.
			j := p.extendNP(i + 1)
			p.addChunk(i, j, true)
			i = j + 1
		case t.Tag == "WP" || t.Tag == "WDT" || t.Tag == "WP$":
			// Bare wh-word (or relative pronoun) is its own chunk.
			p.addChunk(i, i, true)
			i++
		case t.Tag == "PRP":
			p.addChunk(i, i, false)
			i++
		case npInternal(t.Tag):
			// Don't open a chunk on a determiner/adjective with no noun
			// ahead ("How tall is …" — "tall" must stay unchunked so the
			// copular rule sees a predicative adjective).
			if !headCandidate(t.Tag) && !npContinues(p.toks, i+1) {
				i++
				continue
			}
			j := p.extendNP(i)
			p.addChunk(i, j, false)
			i = j + 1
		default:
			i++
		}
	}
}

// npContinues reports whether an NP body starts at i (possibly adjectives
// then a noun).
func npContinues(toks []Token, i int) bool {
	for ; i < len(toks); i++ {
		if IsNounTag(toks[i].Tag) {
			return true
		}
		if toks[i].Tag != "JJ" && toks[i].Tag != "JJR" && toks[i].Tag != "JJS" && toks[i].Tag != "CD" {
			return false
		}
	}
	return false
}

// extendNP returns the last index of the NP chunk starting at i. A
// determiner or possessive can only open a chunk, never continue one, so
// "Michelle Obama the wife" splits into two chunks.
func (p *parser) extendNP(i int) int {
	j := i
	for j+1 < len(p.toks) && npInternal(p.toks[j+1].Tag) {
		switch p.toks[j+1].Tag {
		case "DT", "PRP$", "WP$":
			return j
		}
		j++
	}
	return j
}

func (p *parser) addChunk(start, end int, wh bool) {
	head := end
	for k := end; k >= start; k-- {
		if headCandidate(p.toks[k].Tag) && p.toks[k].Tag != "CD" {
			head = k
			break
		}
	}
	for k := start; k <= end; k++ {
		if p.toks[k].IsWh() {
			wh = true
		}
	}
	c := chunk{start: start, end: end, head: head, wh: wh}
	idx := len(p.chunks)
	p.chunks = append(p.chunks, c)
	for k := start; k <= end; k++ {
		p.chunkAt[k] = idx
	}
}

func (p *parser) attachChunkInternals() {
	for _, c := range p.chunks {
		// A possessive marker makes the noun run before it a possessor:
		// "Angela Merkel 's birth name" → poss(name, Merkel). The
		// possessor's head is the last noun before 's.
		possEnd := -1 // index of the possessor head, if any
		for k := c.start; k <= c.end; k++ {
			if p.toks[k].Tag == "POS" && k > c.start && k < c.end {
				possEnd = k - 1
			}
		}
		for k := c.start; k <= c.end; k++ {
			if k == c.head {
				continue
			}
			rel := RelDep
			switch p.toks[k].Tag {
			case "DT", "WDT":
				rel = RelDet
			case "PRP$", "WP$", "POS":
				rel = RelPoss
			case "JJ", "JJR", "JJS", "CD":
				rel = RelAmod
			case "NN", "NNS", "NNP", "NNPS":
				rel = RelNn
			}
			head := c.head
			switch {
			case possEnd >= 0 && k == possEnd && k != c.head:
				rel = RelPoss // the possessor itself
			case possEnd >= 0 && k < possEnd:
				head = possEnd // material inside the possessor NP
			}
			p.tree.attach(k, head, rel)
		}
	}
}

// chunkOf returns the chunk containing token i, or nil.
func (p *parser) chunkOf(i int) *chunk {
	if i < 0 || i >= len(p.chunkAt) || p.chunkAt[i] < 0 {
		return nil
	}
	return &p.chunks[p.chunkAt[i]]
}

// nextChunkAfter returns the first chunk starting at or after token i whose
// span lies within [i, end], or nil.
func (p *parser) nextChunkAfter(i, end int) *chunk {
	for ci := range p.chunks {
		c := &p.chunks[ci]
		if c.start >= i && c.end <= end {
			return c
		}
	}
	return nil
}

// --------------------------------------------------------------- clauses

type clauseSpan struct {
	start, end int
	antecedent int // token index of the NP head the clause modifies, or -1
}

// findClauses locates relative clauses (and reduced passives) so the main
// clause can be parsed without them. It returns the main clause end
// (exclusive) — conservatively the full sentence minus trailing clauses —
// and the clause spans.
func (p *parser) findClauses() (int, []clauseSpan) {
	n := len(p.toks)
	var clauses []clauseSpan
	mainEnd := n
	for i := 1; i < n; i++ {
		t := p.toks[i]
		prev := p.chunkOf(i - 1)
		if prev == nil || prev.end != i-1 {
			continue
		}
		// Relative pronoun directly after an NP chunk, with a verb ahead:
		// "an actor that played in …", "people who live in …".
		if (t.Tag == "WDT" || t.Tag == "WP") && p.chunkOf(i) != nil && p.chunkOf(i).start == i && p.chunkOf(i).end == i {
			if p.verbAhead(i + 1) {
				clauses = append(clauses, clauseSpan{start: i, end: n, antecedent: prev.head})
				mainEnd = i
				break
			}
		}
		// Reduced relative: "launch pads operated by NASA", "movies
		// directed by Coppola", "films starring Marlon Brando".
		if t.Tag == "VBD" || t.Tag == "VBN" || t.Tag == "VBG" {
			if !p.isMainVerbCandidate(i) {
				clauses = append(clauses, clauseSpan{start: i, end: n, antecedent: prev.head})
				mainEnd = i
				break
			}
		}
	}
	return mainEnd, clauses
}

func (p *parser) verbAhead(i int) bool {
	for ; i < len(p.toks); i++ {
		if IsVerbTag(p.toks[i].Tag) {
			return true
		}
	}
	return false
}

// isMainVerbCandidate reports whether the VBD/VBN at i plausibly heads the
// main clause rather than a reduced relative. Heuristic: it does when no
// other finite verb precedes it and the sentence has no auxiliary strategy
// in play, or when a be-auxiliary immediately governs it.
func (p *parser) isMainVerbCandidate(i int) bool {
	// A be-form somewhere before with only nominal material between makes
	// this a passive main verb: "Who was married …", "In which city was
	// the queen buried?".
	for j := 0; j < i; j++ {
		if p.toks[j].Lemma == "be" && IsVerbTag(p.toks[j].Tag) {
			ok := true
			for k := j + 1; k < i; k++ {
				tag := p.toks[k].Tag
				if !npInternal(tag) && tag != "PRP" && tag != "WP" && tag != "WDT" && tag != "RB" {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
	}
	// No verb before it at all → it is the main verb ("Sean Parnell
	// founded …" style declaratives, "Who created …" wh-subjects).
	for j := 0; j < i; j++ {
		if IsVerbTag(p.toks[j].Tag) {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------- clause parsing

// parseClause parses tokens [start, end) as one clause and returns the
// index of the clause root, or -1 for an empty span. antecedent >= 0 marks
// a relative clause whose pronoun refers to that token.
func (p *parser) parseClause(start, end, antecedent int) int {
	if start >= end {
		return -1
	}
	// Gather verb tokens in the span.
	var verbs []int
	for i := start; i < end; i++ {
		if IsVerbTag(p.toks[i].Tag) || p.toks[i].Tag == "MD" {
			verbs = append(verbs, i)
		}
	}
	if len(verbs) == 0 {
		// Verbless fragment: root is the first chunk head.
		if c := p.nextChunkAfter(start, end-1); c != nil {
			return c.head
		}
		return start
	}

	// Split off a coordinated second verb group: "... born in Vienna and
	// died in Berlin". We parse [start, ccPos) then conj-attach the rest.
	ccPos := -1
	for i := start + 1; i < end-1; i++ {
		if p.toks[i].Tag == "CC" && p.verbAhead(i+1) && p.verbBetween(start, i) {
			ccPos = i
			break
		}
	}
	segEnd := end
	if ccPos >= 0 {
		segEnd = ccPos
	}

	root := p.parseSimpleClause(start, segEnd, antecedent)

	if ccPos >= 0 {
		conjRoot := p.parseSimpleClause(ccPos+1, end, -1)
		if conjRoot >= 0 && root >= 0 && conjRoot != root {
			p.tree.attach(conjRoot, root, RelConj)
			p.tree.attach(ccPos, root, RelCc)
		}
	}
	return root
}

func (p *parser) verbBetween(start, end int) bool {
	for i := start; i < end; i++ {
		if IsVerbTag(p.toks[i].Tag) {
			return true
		}
	}
	return false
}

// parseSimpleClause handles a single verb group plus its arguments.
func (p *parser) parseSimpleClause(start, end, antecedent int) int {
	var verbs []int
	for i := start; i < end; i++ {
		if IsVerbTag(p.toks[i].Tag) || p.toks[i].Tag == "MD" {
			verbs = append(verbs, i)
		}
	}
	if len(verbs) == 0 {
		if c := p.nextChunkAfter(start, end-1); c != nil {
			return c.head
		}
		return start
	}

	// Classify the verb group.
	var (
		root    = -1
		auxes   []int // (aux index, passive?) — passive decided below
		passive = false
		copular = false
		beIdx   = -1
	)
	// Main verb = last verb that is not an auxiliary use.
	last := verbs[len(verbs)-1]
	lastTok := p.toks[last]
	switch {
	case lastTok.Lemma == "be" && len(verbs) >= 1 && !p.hasVerbAfter(last, end):
		// be is the final verb → copular clause.
		copular = true
		beIdx = last
		for _, v := range verbs[:len(verbs)-1] {
			auxes = append(auxes, v)
		}
	case (lastTok.Tag == "VBN" || lastTok.Tag == "VBD") && p.hasBeBefore(verbs, last):
		passive = true
		root = last
		for _, v := range verbs {
			if v != last {
				auxes = append(auxes, v)
			}
		}
	default:
		root = last
		for _, v := range verbs {
			if v != last {
				auxes = append(auxes, v)
			}
		}
	}

	if copular {
		root = p.parseCopular(start, end, beIdx, auxes)
		return root
	}

	// Attach auxiliaries.
	for _, a := range auxes {
		rel := RelAux
		if passive && p.toks[a].Lemma == "be" {
			rel = RelAuxPass
		}
		p.tree.attach(a, root, rel)
	}

	subjRel := RelNsubj
	if passive {
		subjRel = RelNsubjPass
	}

	// Subject selection.
	firstAux := -1
	if len(auxes) > 0 {
		firstAux = auxes[0]
	}
	var subj *chunk
	var frontedWh *chunk
	if antecedent >= 0 {
		// Relative clause: pronoun chunk at span start is subject unless an
		// intervening NP exists before the verb ("the book that X wrote").
		pron := p.chunkOf(start)
		inner := p.firstChunkBetween(start+1, p.firstVerbIn(start, end))
		if inner != nil {
			subj = inner
			frontedWh = pron // pronoun fills object role
		} else {
			subj = pron
		}
	} else if firstAux >= 0 && firstAux < root {
		// Inversion: subject between aux and main verb.
		subj = p.firstChunkBetween(firstAux+1, root)
		// A wh-chunk before the aux is a fronted non-subject.
		if wc := p.firstChunkBetween(start, firstAux); wc != nil && wc.wh {
			frontedWh = wc
		}
		if subj == nil {
			// "Who did … marry?" with no NP between aux and verb can't
			// happen; but "When did Michael Jackson die?" has subj NP there.
			subj = frontedWh
			frontedWh = nil
		}
	} else {
		// Wh-subject or declarative: subject precedes the verb group.
		subj = p.lastChunkBefore(start, root)
		// Passive inversion without do-support: "In which city was the
		// queen buried?" — be before subject NP, root VBN after.
		if passive && subj != nil && subj.wh && len(auxes) > 0 && auxes[0] > subj.end {
			if s2 := p.firstChunkBetween(auxes[0]+1, root); s2 != nil {
				frontedWh = subj
				subj = s2
			}
		}
	}
	if subj != nil {
		p.tree.attach(subj.head, root, subjRel)
	}

	// Imperative object pattern: "Give me all movies …".
	searchFrom := root + 1
	if imperativeVerbs[p.toks[root].Lemma] && root == start {
		if c := p.chunkOf(root + 1); c != nil && p.toks[c.head].Tag == "PRP" {
			p.tree.attach(c.head, root, RelIobj)
			searchFrom = c.end + 1
		}
	}

	// Direct object: NP chunk immediately after the verb (not yet used,
	// not governed by a preposition).
	if c := p.chunkOf(searchFrom); c != nil && c.start == searchFrom && p.unattached(c.head) {
		p.tree.attach(c.head, root, RelDobj)
	}

	// Prepositions and their objects.
	p.attachPreps(start, end, root, frontedWh)

	// Fronted wh chunk that is still unattached becomes the direct object:
	// "Who did Amanda Palmer marry?".
	if frontedWh != nil && p.unattached(frontedWh.head) {
		p.tree.attach(frontedWh.head, root, RelDobj)
	}

	// Adverbial wh (when/where/how) attaches to the root.
	for i := start; i < end; i++ {
		if p.toks[i].Tag == "WRB" && p.unattached(i) && i != root {
			p.tree.attach(i, root, RelAdvmod)
		}
	}

	// NP coordination: an unattached NP chunk directly after "and"
	// following an attached NP conjoins with it ("Antonio Banderas and
	// Anthony Hopkins", "Vienna and Berlin").
	p.attachNPCoordination(start, end)
	return root
}

// attachNPCoordination links "X and Y" noun phrases with conj/cc edges.
func (p *parser) attachNPCoordination(start, end int) {
	for i := start + 1; i < end-1; i++ {
		if p.toks[i].Tag != "CC" || !p.unattached(i) {
			continue
		}
		left := p.chunkOf(i - 1)
		right := p.chunkOf(i + 1)
		if left == nil || right == nil || left.end != i-1 || right.start != i+1 {
			continue
		}
		if p.unattached(left.head) || !p.unattached(right.head) {
			continue
		}
		p.tree.attach(right.head, left.head, RelConj)
		p.tree.attach(i, left.head, RelCc)
	}
}

// parseCopular parses "WH be NP", "be NP NP", "How JJ be NP", "NP be NP"
// clauses; the Stanford convention makes the predicate the root with a cop
// edge to be.
func (p *parser) parseCopular(start, end, beIdx int, auxes []int) int {
	// Predicative adjective: "How tall is Michael Jordan?"
	for i := start; i < beIdx; i++ {
		if p.toks[i].Tag == "JJ" || p.toks[i].Tag == "JJS" || p.toks[i].Tag == "JJR" {
			if p.chunkOf(i) == nil { // not inside an NP
				root := i
				p.tree.attach(beIdx, root, RelCop)
				for _, a := range auxes {
					p.tree.attach(a, root, RelAux)
				}
				if subj := p.firstChunkBetween(beIdx+1, end); subj != nil {
					p.tree.attach(subj.head, root, RelNsubj)
				}
				for j := start; j < end; j++ {
					if p.toks[j].Tag == "WRB" && p.unattached(j) {
						p.tree.attach(j, root, RelAdvmod)
					}
				}
				p.attachPreps(start, end, root, nil)
				return root
			}
		}
	}

	before := p.lastChunkBefore(start, beIdx)
	after1 := p.firstChunkBetween(beIdx+1, end)
	var after2 *chunk
	if after1 != nil {
		after2 = p.firstChunkBetween(after1.end+1, end)
	}

	var subj, pred *chunk
	switch {
	case before != nil && after1 != nil:
		// "Who is the mayor of Berlin?" / "Sean Parnell is the governor of
		// which state?" — subject before be, predicate after.
		subj, pred = before, after1
	case before == nil && after1 != nil && after2 != nil:
		// Yes/no inversion: "Is Michelle Obama the wife of Barack Obama?"
		subj, pred = after1, after2
	case after1 != nil:
		subj, pred = nil, after1
	case before != nil:
		subj, pred = nil, before
	default:
		return beIdx
	}
	root := pred.head
	p.tree.attach(beIdx, root, RelCop)
	for _, a := range auxes {
		p.tree.attach(a, root, RelAux)
	}
	if subj != nil {
		p.tree.attach(subj.head, root, RelNsubj)
	}
	p.attachPreps(start, end, root, nil)
	for j := start; j < end; j++ {
		if p.toks[j].Tag == "WRB" && p.unattached(j) {
			p.tree.attach(j, root, RelAdvmod)
		}
	}
	return root
}

// attachPreps attaches each preposition in [start, end) to the directly
// preceding noun head (if the preposition follows that chunk) or otherwise
// to the clause root verb; its object is the next NP chunk, or the fronted
// wh chunk when stranded.
func (p *parser) attachPreps(start, end, root int, frontedWh *chunk) {
	for i := start; i < end; i++ {
		tag := p.toks[i].Tag
		if tag != "IN" && tag != "TO" {
			continue
		}
		if !p.unattached(i) {
			continue
		}
		// Infinitival to: "to marry" — attach as aux to following verb.
		if tag == "TO" && i+1 < end && p.toks[i+1].Tag == "VB" {
			p.tree.attach(i, i+1, RelAux)
			continue
		}
		// Attachment site.
		site := root
		if prev := p.chunkOf(i - 1); prev != nil && prev.end == i-1 && prev.head != root {
			// Noun attachment: "members of", "mayor of". A fronted
			// preposition ("In which movies did …") has no left context
			// and falls through to the verb root.
			site = prev.head
		}
		// Object of the preposition.
		var obj *chunk
		if c := p.chunkOf(i + 1); c != nil && c.start == i+1 {
			obj = c
		}
		if obj == nil && frontedWh != nil && p.unattached(frontedWh.head) {
			obj = frontedWh // stranded: "did X star in?"
		}
		if site == root && i == start && obj != nil && obj.wh && site >= 0 {
			// Fronted preposition: prep attaches to the verb root.
			site = root
		}
		if site < 0 {
			continue
		}
		p.tree.attach(i, site, RelPrep)
		if obj != nil && p.unattached(obj.head) {
			p.tree.attach(obj.head, i, RelPobj)
		}
	}
}

// -------------------------------------------------------------- utilities

func (p *parser) hasVerbAfter(i, end int) bool {
	for j := i + 1; j < end; j++ {
		if IsVerbTag(p.toks[j].Tag) {
			return true
		}
	}
	return false
}

func (p *parser) hasBeBefore(verbs []int, last int) bool {
	for _, v := range verbs {
		if v < last && p.toks[v].Lemma == "be" {
			return true
		}
	}
	return false
}

func (p *parser) firstVerbIn(start, end int) int {
	for i := start; i < end; i++ {
		if IsVerbTag(p.toks[i].Tag) {
			return i
		}
	}
	return end
}

// firstChunkBetween returns the first chunk fully inside [start, end).
func (p *parser) firstChunkBetween(start, end int) *chunk {
	for ci := range p.chunks {
		c := &p.chunks[ci]
		if c.start >= start && c.end < end {
			return c
		}
	}
	return nil
}

// lastChunkBefore returns the last chunk ending before token end and
// starting at or after start.
func (p *parser) lastChunkBefore(start, end int) *chunk {
	var best *chunk
	for ci := range p.chunks {
		c := &p.chunks[ci]
		if c.start >= start && c.end < end {
			best = c
		}
	}
	return best
}

func (p *parser) unattached(i int) bool { return p.tree.Nodes[i].Head == -1 }
