package store_test

// Cold-start micro benchmarks over the bundled mini-DBpedia KB (external
// test package so it can build the KB via internal/bench). The gqa-bench
// coldstart experiment measures the same paths on serving-scale graphs;
// these pin the small-graph constants.

import (
	"bytes"
	"io"
	"testing"

	"gqa/internal/bench"
	"gqa/internal/store"
)

func kbFrozenBytes(b *testing.B) []byte {
	b.Helper()
	g, err := bench.BuildKB()
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := store.SaveFrozen(&buf, g); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func BenchmarkLoadFrozenKB(b *testing.B) {
	data := kbFrozenBytes(b)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.LoadFrozen(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSaveFrozenKB(b *testing.B) {
	g, err := bench.BuildKB()
	if err != nil {
		b.Fatal(err)
	}
	g.Freeze()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.SaveFrozen(io.Discard, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadSnapshotKB(b *testing.B) {
	g, err := bench.BuildKB()
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Snapshot(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g2, err := store.LoadSnapshot(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		g2.Freeze()
	}
}
