package store

import (
	"fmt"
	"sync"
	"testing"

	"gqa/internal/rdf"
)

// hubGraph builds a graph with one hub entity connected to n neighbors
// over two alternating predicates — degree well above predIndexMinDegree,
// so OutByPred/InByPred exercise the cached path.
func hubGraph(t *testing.T, n int) (*Graph, ID, ID, ID) {
	t.Helper()
	g := New()
	hub := g.Intern(rdf.NewIRI("http://x/hub"))
	p1 := g.Intern(rdf.NewIRI("http://x/likes"))
	p2 := g.Intern(rdf.NewIRI("http://x/knows"))
	for i := 0; i < n; i++ {
		o := g.Intern(rdf.NewIRI(fmt.Sprintf("http://x/n%d", i)))
		p := p1
		if i%2 == 1 {
			p = p2
		}
		g.AddSPO(hub, p, o)
		g.AddSPO(o, p, hub)
	}
	return g, hub, p1, p2
}

// scanByPred is the straightforward reference the index must agree with.
func scanByPred(edges []Edge, p ID) []ID {
	var out []ID
	for _, e := range edges {
		if e.Pred == p {
			out = append(out, e.To)
		}
	}
	return out
}

func sameIDs(a, b []ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestOutInByPredMatchScan(t *testing.T) {
	// Both below the cache threshold (small n) and above it, the grouped
	// lookup must return exactly the scan result in adjacency order.
	for _, n := range []int{4, 100} {
		g, hub, p1, p2 := hubGraph(t, n)
		for _, p := range []ID{p1, p2} {
			if got, want := g.OutByPred(hub, p), scanByPred(g.Out(hub), p); !sameIDs(got, want) {
				t.Fatalf("n=%d OutByPred = %v, scan = %v", n, got, want)
			}
			if got, want := g.InByPred(hub, p), scanByPred(g.In(hub), p); !sameIDs(got, want) {
				t.Fatalf("n=%d InByPred = %v, scan = %v", n, got, want)
			}
		}
		// Absent predicate: empty either way.
		if got := g.OutByPred(hub, g.Intern(rdf.NewIRI("http://x/none"))); len(got) != 0 {
			t.Fatalf("absent predicate returned %v", got)
		}
	}
}

// TestPredIndexConcurrentBuild is the race regression for the lazily-built
// predicate index: many goroutines hit the same cold hub vertex at once,
// racing the build. Before the index was guarded (RWMutex + install-once
// under the write lock), this test failed under -race with concurrent map
// writes; it must stay in the -race tier.
func TestPredIndexConcurrentBuild(t *testing.T) {
	g, hub, p1, p2 := hubGraph(t, 200)
	wantOut1 := scanByPred(g.Out(hub), p1)
	wantIn2 := scanByPred(g.In(hub), p2)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got := g.OutByPred(hub, p1); !sameIDs(got, wantOut1) {
					select {
					case errs <- fmt.Sprintf("OutByPred = %v, want %v", got, wantOut1):
					default:
					}
					return
				}
				if got := g.InByPred(hub, p2); !sameIDs(got, wantIn2) {
					select {
					case errs <- fmt.Sprintf("InByPred = %v, want %v", got, wantIn2):
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

func TestPredIndexInvalidatedOnMutation(t *testing.T) {
	g, hub, p1, _ := hubGraph(t, 50)
	before := append([]ID(nil), g.OutByPred(hub, p1)...) // populate the cache

	extra := g.Intern(rdf.NewIRI("http://x/extra"))
	g.AddSPO(hub, p1, extra)
	after := g.OutByPred(hub, p1)
	if len(after) != len(before)+1 || after[len(after)-1] != extra {
		t.Fatalf("Add not reflected: before %d, after %v", len(before), after)
	}

	if !g.Remove(hub, p1, extra) {
		t.Fatal("Remove reported absent triple")
	}
	if got := g.OutByPred(hub, p1); !sameIDs(got, before) {
		t.Fatalf("Remove not reflected: got %v, want %v", got, before)
	}
}
