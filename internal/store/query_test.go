package store

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"gqa/internal/rdf"
)

// randomGraph builds a random small graph for property tests and returns it
// with the encoded triple list.
func randomGraph(r *rand.Rand, nVerts, nTriples int) (*Graph, []Spo) {
	g := New()
	verts := make([]ID, nVerts)
	for i := range verts {
		verts[i] = g.Intern(rdf.Resource(fmt.Sprintf("v%d", i)))
	}
	preds := make([]ID, 1+r.Intn(5))
	for i := range preds {
		preds[i] = g.Intern(rdf.Ontology(fmt.Sprintf("p%d", i)))
	}
	for i := 0; i < nTriples; i++ {
		s := verts[r.Intn(len(verts))]
		p := preds[r.Intn(len(preds))]
		o := verts[r.Intn(len(verts))]
		g.AddSPO(s, p, o)
	}
	var all []Spo
	for spo := range g.triples {
		all = append(all, spo)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.S != b.S {
			return a.S < b.S
		}
		if a.P != b.P {
			return a.P < b.P
		}
		return a.O < b.O
	})
	return g, all
}

// bruteMatch filters the full triple list by pattern.
func bruteMatch(all []Spo, s, p, o ID) []Spo {
	var out []Spo
	for _, t := range all {
		if s != Any && t.S != s {
			continue
		}
		if p != Any && t.P != p {
			continue
		}
		if o != Any && t.O != o {
			continue
		}
		out = append(out, t)
	}
	return out
}

func collectMatch(g *Graph, s, p, o ID) []Spo {
	var out []Spo
	g.Match(s, p, o, func(t Spo) bool { out = append(out, t); return true })
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.S != b.S {
			return a.S < b.S
		}
		if a.P != b.P {
			return a.P < b.P
		}
		return a.O < b.O
	})
	return out
}

func sposEqual(a, b []Spo) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestQuickMatchAgreesWithBruteForce checks every binding combination of
// Match against a linear scan on random graphs.
func TestQuickMatchAgreesWithBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, all := randomGraph(r, 2+r.Intn(8), r.Intn(40))
		// Try all 8 binding patterns with randomly chosen bound values
		// (sometimes values that are absent from the graph).
		pick := func() ID {
			if r.Intn(4) == 0 {
				return ID(g.NumTerms()) - 1 // may be a predicate or vertex
			}
			return ID(r.Intn(g.NumTerms() + 1))
		}
		for mask := 0; mask < 8; mask++ {
			s, p, o := Any, Any, Any
			if mask&1 != 0 {
				s = pick()
			}
			if mask&2 != 0 {
				p = pick()
			}
			if mask&4 != 0 {
				o = pick()
			}
			if int(s) > g.NumTerms() || int(p) > g.NumTerms() || int(o) > g.NumTerms() {
				continue
			}
			want := bruteMatch(all, s, p, o)
			got := collectMatch(g, s, p, o)
			if !sposEqual(got, want) {
				t.Logf("pattern (%v,%v,%v): got %v want %v", s, p, o, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchEarlyStop(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g, _ := randomGraph(r, 6, 30)
	n := 0
	g.Match(Any, Any, Any, func(Spo) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop failed: %d calls", n)
	}
}

func TestCount(t *testing.T) {
	g := New()
	a := g.Intern(rdf.Resource("A"))
	p := g.Intern(rdf.Ontology("p"))
	for i := 0; i < 5; i++ {
		o := g.Intern(rdf.Resource(fmt.Sprintf("O%d", i)))
		g.AddSPO(a, p, o)
	}
	if got := g.Count(a, p, Any); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if got := g.Count(Any, p, Any); got != 5 {
		t.Fatalf("Count by pred = %d, want 5", got)
	}
}

func TestUndirectedNeighborsCoversBothDirections(t *testing.T) {
	g := New()
	a := g.Intern(rdf.Resource("A"))
	b := g.Intern(rdf.Resource("B"))
	c := g.Intern(rdf.Resource("C"))
	p := g.Intern(rdf.Ontology("p"))
	q := g.Intern(rdf.Ontology("q"))
	g.AddSPO(a, p, b) // A -p-> B
	g.AddSPO(c, q, a) // C -q-> A
	var got []Neighbor
	g.UndirectedNeighbors(a, func(n Neighbor) bool { got = append(got, n); return true })
	if len(got) != 2 {
		t.Fatalf("got %d neighbors, want 2", len(got))
	}
	if !(got[0].Forward && got[0].Pred == p && got[0].To == b) {
		t.Fatalf("forward neighbor wrong: %+v", got[0])
	}
	if got[1].Forward || got[1].Pred != q || got[1].To != c {
		t.Fatalf("backward neighbor wrong: %+v", got[1])
	}
}

func TestEdgesBetween(t *testing.T) {
	g := New()
	a := g.Intern(rdf.Resource("A"))
	b := g.Intern(rdf.Resource("B"))
	p := g.Intern(rdf.Ontology("p"))
	q := g.Intern(rdf.Ontology("q"))
	g.AddSPO(a, p, b)
	g.AddSPO(b, q, a)
	edges := g.EdgesBetween(a, b)
	if len(edges) != 2 {
		t.Fatalf("got %d edges, want 2", len(edges))
	}
	seenFwd, seenBack := false, false
	for _, e := range edges {
		if e.Forward && e.Pred == p {
			seenFwd = true
		}
		if !e.Forward && e.Pred == q {
			seenBack = true
		}
	}
	if !seenFwd || !seenBack {
		t.Fatalf("missing directions: %+v", edges)
	}
	if got := g.EdgesBetween(a, a); got != nil {
		t.Fatalf("self edges should be empty, got %+v", got)
	}
}

func TestHasAdjacentPred(t *testing.T) {
	g := New()
	a := g.Intern(rdf.Resource("A"))
	b := g.Intern(rdf.Resource("B"))
	p := g.Intern(rdf.Ontology("p"))
	q := g.Intern(rdf.Ontology("q"))
	g.AddSPO(a, p, b)
	if !g.HasAdjacentPred(a, p) || !g.HasAdjacentPred(b, p) {
		t.Fatal("both ends must see predicate p")
	}
	if g.HasAdjacentPred(a, q) {
		t.Fatal("q is not adjacent to A")
	}
}

func TestObjectsOfAndSubjectsOf(t *testing.T) {
	g := New()
	a := g.Intern(rdf.Resource("A"))
	p := g.Intern(rdf.Ontology("p"))
	b := g.Intern(rdf.Resource("B"))
	c := g.Intern(rdf.Resource("C"))
	g.AddSPO(a, p, b)
	g.AddSPO(a, p, c)
	g.AddSPO(c, p, b)
	objs := g.ObjectsOf(a, p)
	if len(objs) != 2 || objs[0] != b || objs[1] != c {
		t.Fatalf("ObjectsOf = %v", objs)
	}
	subs := g.SubjectsOf(p, b)
	if len(subs) != 2 {
		t.Fatalf("SubjectsOf = %v", subs)
	}
}

// TestQuickSignatureConsistency: the Bloom-style vertex signature must
// never produce a false negative for HasAdjacentPred, including after
// removals (where it may produce false positives but must stay correct).
func TestQuickSignatureConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, _ := randomGraph(r, 2+r.Intn(8), r.Intn(40))
		// Random removals.
		var all []Spo
		g.Match(Any, Any, Any, func(t Spo) bool { all = append(all, t); return true })
		for _, spo := range all {
			if r.Intn(3) == 0 {
				g.Remove(spo.S, spo.P, spo.O)
			}
		}
		// Reference adjacency check for every (vertex, predicate) pair.
		for v := 0; v < g.NumTerms(); v++ {
			id := ID(v)
			for p := 0; p < g.NumTerms(); p++ {
				pid := ID(p)
				want := false
				for _, e := range g.Out(id) {
					if e.Pred == pid {
						want = true
					}
				}
				for _, e := range g.In(id) {
					if e.Pred == pid {
						want = true
					}
				}
				if got := g.HasAdjacentPred(id, pid); got != want {
					t.Logf("seed %d: HasAdjacentPred(%d,%d) = %v, want %v", seed, id, pid, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
