// Package admission implements overload protection for the serving front
// end. The answering pipeline survives one pathological question via
// budgets (internal/budget) and repeated questions via the answer cache
// (internal/qcache); this package protects the process from many
// simultaneous well-formed questions — the load regime where an unbounded
// accept loop queues work faster than it drains and latency tips over.
//
// Three mechanisms compose:
//
//   - A bounded in-flight gate: at most MaxInFlight requests hold a
//     pipeline slot at once. Excess requests wait in a FIFO queue of at
//     most MaxQueue entries; beyond that they are rejected immediately
//     ("queue-full") so memory stays bounded.
//   - Deadline-aware queueing: a queued request whose remaining context
//     deadline can no longer cover the observed p50 service time is
//     rejected ("deadline") instead of being granted a slot it is doomed
//     to waste — both when it arrives and again when its turn comes.
//   - Per-client fairness: a keyed token bucket (ClientQPS/ClientBurst)
//     sheds the hottest clients first ("client-rate") before the shared
//     queue fills, so one aggressive client cannot starve the rest.
//
// Every admitted request carries a shed Tier derived from instantaneous
// gate + queue occupancy. Tier 0 is normal service; tiers 1–3 tell the
// caller to shrink its per-question budget in grades (see gqa.Budget.Shed)
// so the server degrades answer quality smoothly instead of falling over.
// Tiers restore by themselves as occupancy subsides.
//
// Rejections are structured (*RejectError with a Reason from a closed set
// and a RetryAfter hint) so the HTTP layer can emit 429 + Retry-After.
// All counters, gauges, and the queue-wait histogram are pre-registered
// on the obs.Default registry with closed label sets.
package admission

import (
	"container/list"
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"gqa/internal/obs"
)

// Reject reasons — a closed set, each pre-registered as a series of
// gqa_admission_rejected_total{reason=...}.
const (
	// ReasonQueueFull: the wait queue is at MaxQueue.
	ReasonQueueFull = "queue-full"
	// ReasonDeadline: the request's remaining deadline cannot cover the
	// observed p50 service time (or expired while queued).
	ReasonDeadline = "deadline"
	// ReasonCanceled: the request's context was canceled while queued.
	ReasonCanceled = "canceled"
	// ReasonClientRate: the per-client token bucket is empty.
	ReasonClientRate = "client-rate"
	// ReasonDraining: the controller is draining for shutdown.
	ReasonDraining = "draining"
)

// MaxTier is the deepest shed tier an admitted request can carry.
const MaxTier = 3

// Admission metrics. Both label sets are closed and pre-registered so the
// Prometheus exposition is stable from the first scrape and the admit
// path only performs atomic updates.
var (
	admittedTotal = obs.DefaultCounter("gqa_admission_admitted_total",
		"Requests granted a pipeline slot (any shed tier).")
	rejectedTotal = map[string]*obs.Counter{
		ReasonQueueFull:  rejectedCounter(ReasonQueueFull),
		ReasonDeadline:   rejectedCounter(ReasonDeadline),
		ReasonCanceled:   rejectedCounter(ReasonCanceled),
		ReasonClientRate: rejectedCounter(ReasonClientRate),
		ReasonDraining:   rejectedCounter(ReasonDraining),
	}
	shedTotal = map[int]*obs.Counter{
		1: shedCounter(1),
		2: shedCounter(2),
		3: shedCounter(3),
	}
	inflightGauge = obs.DefaultGauge("gqa_admission_inflight",
		"Requests currently holding a pipeline slot.")
	queueDepthGauge = obs.DefaultGauge("gqa_admission_queue_depth",
		"Requests waiting for a pipeline slot.")
	queueWaitSeconds = obs.DefaultHistogram("gqa_admission_queue_wait_seconds",
		"Time admitted requests spent queued before receiving a slot.", nil)
	clientsGauge = obs.DefaultGauge("gqa_admission_clients",
		"Per-client token buckets currently tracked (LRU occupancy).")
)

func rejectedCounter(reason string) *obs.Counter {
	return obs.DefaultCounter("gqa_admission_rejected_total",
		"Requests rejected at admission, by reason.", obs.L("reason", reason))
}

func shedCounter(tier int) *obs.Counter {
	return obs.DefaultCounter("gqa_admission_shed_total",
		"Requests admitted under a shed (shrunken) budget, by tier.",
		obs.L("tier", strconv.Itoa(tier)))
}

// RejectError reports a request the controller declined to admit. Reason
// is one of the Reason constants; RetryAfter is the suggested client
// back-off (zero when an immediate retry is reasonable).
type RejectError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *RejectError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("admission: rejected (%s), retry after %s", e.Reason, e.RetryAfter)
	}
	return fmt.Sprintf("admission: rejected (%s)", e.Reason)
}

// Config sizes a Controller. The zero value gets sensible serving
// defaults (see New).
type Config struct {
	// MaxInFlight is the number of concurrent pipeline slots. Default
	// 4×GOMAXPROCS.
	MaxInFlight int
	// MaxQueue is the number of requests allowed to wait for a slot
	// beyond the gate. Default 8×MaxInFlight.
	MaxQueue int
	// ClientQPS is the sustained per-client admission rate; 0 disables
	// per-client limiting entirely.
	ClientQPS float64
	// ClientBurst is the per-client bucket capacity. Default
	// max(2×ClientQPS, 1) when ClientQPS is set.
	ClientBurst float64
	// MaxClients bounds the tracked per-client buckets (LRU-evicted).
	// Default 1024.
	MaxClients int
	// SeedServiceTime pre-seeds the p50 service-time estimate before any
	// request has completed, so deadline-aware drop works from the first
	// burst. Zero leaves the estimate at 0 until observed.
	SeedServiceTime time.Duration
	// Now is the clock (test hook). Default time.Now.
	Now func() time.Time
}

// waiter is one queued request. done flips exactly once, under the
// controller mutex, when the waiter is granted, rejected, or abandoned —
// whichever side flips it owns the outcome.
type waiter struct {
	ready    chan error // buffered(1): nil = slot granted, *RejectError = rejected
	deadline time.Time  // zero = none
	enqueued time.Time
	tier     int // set by the dispatcher at grant time
	done     bool
}

// Controller is the admission gate. Safe for concurrent use.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	inflight int
	queue    []*waiter
	draining bool
	clients  map[string]*list.Element
	lru      *list.List // front = most recently seen client

	svc svcEstimator
}

// New builds a Controller, applying defaults for unset Config fields.
func New(cfg Config) *Controller {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 8 * cfg.MaxInFlight
	}
	if cfg.ClientQPS > 0 && cfg.ClientBurst <= 0 {
		cfg.ClientBurst = max(2*cfg.ClientQPS, 1)
	}
	if cfg.MaxClients <= 0 {
		cfg.MaxClients = 1024
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	c := &Controller{
		cfg:     cfg,
		clients: make(map[string]*list.Element),
		lru:     list.New(),
	}
	if cfg.SeedServiceTime > 0 {
		c.svc.observe(cfg.SeedServiceTime)
	}
	return c
}

// Ticket is one admitted request's hold on a pipeline slot. Release it
// exactly once, after the pipeline finishes.
type Ticket struct {
	c        *Controller
	tier     int
	wait     time.Duration
	start    time.Time
	released bool
	mu       sync.Mutex
}

// Tier is the shed tier the request was admitted at: 0 for normal
// service, 1–MaxTier for graded budget shrinking under pressure.
func (t *Ticket) Tier() int { return t.tier }

// QueueWait is how long the request waited in the admission FIFO before
// receiving its slot (zero on the fast path). The flight recorder carries
// it on the request's wide event.
func (t *Ticket) QueueWait() time.Duration { return t.wait }

// Release frees the slot, records the observed service time (feeding the
// deadline-aware drop's p50 estimate), and dispatches queued waiters.
// Releasing twice is a no-op.
func (t *Ticket) Release() {
	t.mu.Lock()
	if t.released {
		t.mu.Unlock()
		return
	}
	t.released = true
	t.mu.Unlock()
	c := t.c
	c.svc.observe(c.cfg.Now().Sub(t.start))
	c.mu.Lock()
	c.inflight--
	inflightGauge.Set(int64(c.inflight))
	c.dispatchLocked()
	c.mu.Unlock()
}

// Admit asks for a pipeline slot on behalf of client (any stable key —
// the serving layer uses the remote address or an X-Client header).
// It returns a Ticket, or a *RejectError explaining the refusal. Admit
// blocks only while the request waits in the FIFO queue; ctx cancellation
// or expiry while queued abandons the wait and returns a rejection.
func (c *Controller) Admit(ctx context.Context, client string) (*Ticket, error) {
	now := c.cfg.Now()
	// A dead context never gets a slot, even with the gate open.
	if err := ctx.Err(); err != nil {
		return nil, c.reject(ctxReason(err), 0)
	}
	deadline, hasDeadline := ctx.Deadline()

	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		return nil, c.reject(ReasonDraining, 0)
	}
	if c.cfg.ClientQPS > 0 && client != "" {
		if retry, ok := c.takeTokenLocked(client, now); !ok {
			c.mu.Unlock()
			return nil, c.reject(ReasonClientRate, retry)
		}
	}
	// Fast path: a free slot and nobody queued ahead.
	if c.inflight < c.cfg.MaxInFlight && len(c.queue) == 0 {
		c.inflight++
		inflightGauge.Set(int64(c.inflight))
		tier := c.tierLocked()
		c.mu.Unlock()
		return c.granted(tier, 0), nil
	}
	// Queue, bounded.
	if len(c.queue) >= c.cfg.MaxQueue {
		retry := c.drainEstimateLocked()
		c.mu.Unlock()
		return nil, c.reject(ReasonQueueFull, retry)
	}
	// Deadline-aware drop at enqueue: a request that cannot cover the
	// observed p50 service time is doomed — reject it now rather than
	// letting it occupy queue space and, later, a pipeline slot.
	if hasDeadline {
		if p50 := c.svc.p50(); deadline.Sub(now) < p50 {
			c.mu.Unlock()
			return nil, c.reject(ReasonDeadline, 0)
		}
	}
	w := &waiter{ready: make(chan error, 1), enqueued: now}
	if hasDeadline {
		w.deadline = deadline
	}
	c.queue = append(c.queue, w)
	queueDepthGauge.Set(int64(len(c.queue)))
	c.mu.Unlock()

	select {
	case err := <-w.ready:
		if err != nil {
			return nil, err
		}
		wait := c.cfg.Now().Sub(w.enqueued)
		queueWaitSeconds.ObserveDuration(wait)
		return c.granted(w.tier, wait), nil
	case <-ctx.Done():
		c.mu.Lock()
		if w.done {
			// The dispatcher resolved the waiter before we could abandon
			// it; consume its outcome. A granted slot must go back.
			c.mu.Unlock()
			if err := <-w.ready; err == nil {
				c.mu.Lock()
				c.inflight--
				inflightGauge.Set(int64(c.inflight))
				c.dispatchLocked()
				c.mu.Unlock()
			}
			return nil, c.reject(ctxReason(ctx.Err()), 0)
		}
		w.done = true
		c.removeLocked(w)
		queueDepthGauge.Set(int64(len(c.queue)))
		c.mu.Unlock()
		return nil, c.reject(ctxReason(ctx.Err()), 0)
	}
}

// Drain flips the controller into shutdown mode: every queued waiter is
// rejected ("draining") and every future Admit is refused. In-flight
// requests keep their slots until Release.
func (c *Controller) Drain() {
	c.mu.Lock()
	c.draining = true
	for _, w := range c.queue {
		if !w.done {
			w.done = true
			rejectedTotal[ReasonDraining].Inc()
			w.ready <- &RejectError{Reason: ReasonDraining}
		}
	}
	c.queue = nil
	queueDepthGauge.Set(0)
	c.mu.Unlock()
}

// InFlight reports the requests currently holding slots.
func (c *Controller) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inflight
}

// QueueDepth reports the requests currently waiting.
func (c *Controller) QueueDepth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// P50 reports the current p50 service-time estimate (the deadline-aware
// drop threshold).
func (c *Controller) P50() time.Duration { return c.svc.p50() }

// granted finalizes an admission: metrics plus the caller's ticket.
func (c *Controller) granted(tier int, wait time.Duration) *Ticket {
	admittedTotal.Inc()
	if ctr, ok := shedTotal[tier]; ok {
		ctr.Inc()
	}
	return &Ticket{c: c, tier: tier, wait: wait, start: c.cfg.Now()}
}

// reject counts and builds a rejection.
func (c *Controller) reject(reason string, retry time.Duration) *RejectError {
	rejectedTotal[reason].Inc()
	return &RejectError{Reason: reason, RetryAfter: retry}
}

// ctxReason maps a context error onto the rejection taxonomy.
func ctxReason(err error) string {
	if err == context.Canceled {
		return ReasonCanceled
	}
	return ReasonDeadline
}

// dispatchLocked hands freed slots to queued waiters in FIFO order,
// rejecting any whose remaining deadline no longer covers the observed
// p50 service time — a doomed request must never consume a slot.
func (c *Controller) dispatchLocked() {
	now := c.cfg.Now()
	p50 := c.svc.p50()
	for c.inflight < c.cfg.MaxInFlight && len(c.queue) > 0 {
		w := c.queue[0]
		c.queue = c.queue[1:]
		if w.done {
			continue
		}
		w.done = true
		if !w.deadline.IsZero() && w.deadline.Sub(now) < p50 {
			rejectedTotal[ReasonDeadline].Inc()
			w.ready <- &RejectError{Reason: ReasonDeadline}
			continue
		}
		c.inflight++
		inflightGauge.Set(int64(c.inflight))
		w.tier = c.tierLocked()
		w.ready <- nil
	}
	if len(c.queue) == 0 {
		// Let the drained backing array go.
		c.queue = nil
	}
	queueDepthGauge.Set(int64(len(c.queue)))
}

// removeLocked deletes an abandoned waiter from the queue.
func (c *Controller) removeLocked(w *waiter) {
	for i, q := range c.queue {
		if q == w {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return
		}
	}
}

// tierLocked derives the shed tier from instantaneous occupancy: the
// pressure signal is (inflight + queued) / (MaxInFlight + MaxQueue),
// graded at 25/50/75%. Computed at grant time, so tiers rise as the
// queue deepens and restore as it drains — no hysteresis state to decay.
func (c *Controller) tierLocked() int {
	p := float64(c.inflight+len(c.queue)) / float64(c.cfg.MaxInFlight+c.cfg.MaxQueue)
	switch {
	case p >= 0.75:
		return 3
	case p >= 0.5:
		return 2
	case p >= 0.25:
		return 1
	default:
		return 0
	}
}

// drainEstimateLocked estimates how long a full queue takes to drain —
// the Retry-After hint on queue-full rejections.
func (c *Controller) drainEstimateLocked() time.Duration {
	p50 := c.svc.p50()
	if p50 <= 0 {
		return 0
	}
	return p50 * time.Duration(len(c.queue)+1) / time.Duration(c.cfg.MaxInFlight)
}

// ------------------------------------------------------------- client rate

// clientBucket is one client's token bucket, refilled lazily on access.
type clientBucket struct {
	key    string
	tokens float64
	last   time.Time
}

// takeTokenLocked takes one admission token for key, refilling from the
// elapsed time since the bucket was last touched. Returns (0, true) on
// success or (retry hint, false) when the bucket is empty. Buckets are
// LRU-bounded at MaxClients so hostile key cardinality cannot grow state.
func (c *Controller) takeTokenLocked(key string, now time.Time) (time.Duration, bool) {
	el, ok := c.clients[key]
	var b *clientBucket
	if !ok {
		if c.lru.Len() >= c.cfg.MaxClients {
			oldest := c.lru.Back()
			delete(c.clients, oldest.Value.(*clientBucket).key)
			c.lru.Remove(oldest)
		}
		b = &clientBucket{key: key, tokens: c.cfg.ClientBurst, last: now}
		c.clients[key] = c.lru.PushFront(b)
		clientsGauge.Set(int64(c.lru.Len()))
	} else {
		b = el.Value.(*clientBucket)
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens = min(c.cfg.ClientBurst, b.tokens+dt*c.cfg.ClientQPS)
		}
		b.last = now
		c.lru.MoveToFront(el)
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	need := (1 - b.tokens) / c.cfg.ClientQPS
	return time.Duration(need * float64(time.Second)), false
}

// ------------------------------------------------------------ p50 tracking

const (
	svcWindow = 256 // rolling service-time samples retained
	svcRecalc = 16  // recompute the cached p50 every N observations
)

// svcEstimator tracks a rolling p50 of observed service times. observe is
// a ring-buffer write; the percentile is recomputed every svcRecalc
// observations so the estimate stays cheap on the admit path.
type svcEstimator struct {
	mu     sync.Mutex
	ring   [svcWindow]time.Duration
	idx, n int
	dirty  int
	cached time.Duration
}

func (e *svcEstimator) observe(d time.Duration) {
	e.mu.Lock()
	e.ring[e.idx] = d
	e.idx = (e.idx + 1) % svcWindow
	if e.n < svcWindow {
		e.n++
	}
	e.dirty++
	// Recompute eagerly while the window is still small so the estimate
	// tracks the first requests, then settle into the periodic cadence.
	if e.dirty >= svcRecalc || e.n <= svcRecalc {
		buf := make([]time.Duration, e.n)
		copy(buf, e.ring[:e.n])
		sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
		e.cached = buf[e.n/2]
		e.dirty = 0
	}
	e.mu.Unlock()
}

func (e *svcEstimator) p50() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cached
}
