package gqa

import (
	"sync"
	"testing"
)

// TestConcurrentAnswer exercises the facade's concurrency contract: a
// built System serves questions from many goroutines (run under -race in
// CI via `go test -race ./...`).
func TestConcurrentAnswer(t *testing.T) {
	sys := benchmarkSystem(t)
	questions := []string{
		"Who is the mayor of Berlin?",
		"Which movies did Antonio Banderas star in?",
		"Who was married to an actor that played in Philadelphia?",
		"Is Berlin the capital of Germany?",
		"Give me all companies in Munich.",
		"Who is the uncle of John F. Kennedy Jr.?",
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(questions)*8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, q := range questions {
				ans, err := sys.Answer(q)
				if err != nil {
					errs <- err
					return
				}
				if i%2 == 0 && !ans.OK && ans.Boolean == nil {
					errs <- ErrNoAnswer
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentSPARQL: the query path is read-only too.
func TestConcurrentSPARQL(t *testing.T) {
	sys := benchmarkSystem(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				res, err := sys.Query(`SELECT ?f WHERE { ?f dbo:starring dbr:Antonio_Banderas }`)
				if err != nil || len(res.Rows) != 3 {
					t.Errorf("concurrent query: %v / %d rows", err, len(res.Rows))
					return
				}
			}
		}()
	}
	wg.Wait()
}
