package qcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func counters() (hits, misses, evictions, coalesced int64) {
	return hitsTotal.Value(), missesTotal.Value(), evictionsTotal.Value(), coalescedTotal.Value()
}

func TestDoHitMissStore(t *testing.T) {
	c := New(8)
	ctx := context.Background()
	h0, m0, _, _ := counters()

	computes := 0
	fn := func() (any, bool, error) { computes++; return "v1", true, nil }

	v, out, err := c.Do(ctx, "k", fn)
	if err != nil || v != "v1" || out != Miss {
		t.Fatalf("first Do = (%v, %v, %v), want (v1, miss, nil)", v, out, err)
	}
	v, out, err = c.Do(ctx, "k", fn)
	if err != nil || v != "v1" || out != Hit {
		t.Fatalf("second Do = (%v, %v, %v), want (v1, hit, nil)", v, out, err)
	}
	if computes != 1 {
		t.Errorf("compute ran %d times, want 1", computes)
	}
	h1, m1, _, _ := counters()
	if h1-h0 != 1 || m1-m0 != 1 {
		t.Errorf("hit/miss deltas = %d/%d, want 1/1", h1-h0, m1-m0)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestUncacheableNotStored(t *testing.T) {
	c := New(8)
	ctx := context.Background()
	computes := 0
	fn := func() (any, bool, error) { computes++; return "degraded", false, nil }
	for i := 0; i < 3; i++ {
		v, out, err := c.Do(ctx, "k", fn)
		if err != nil || v != "degraded" || out != Miss {
			t.Fatalf("Do #%d = (%v, %v, %v), want (degraded, miss, nil)", i, v, out, err)
		}
	}
	if computes != 3 {
		t.Errorf("compute ran %d times, want 3 (uncacheable results are never stored)", computes)
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
}

func TestErrorNotStored(t *testing.T) {
	c := New(8)
	ctx := context.Background()
	wantErr := errors.New("boom")
	v, out, err := c.Do(ctx, "k", func() (any, bool, error) { return nil, true, wantErr })
	if !errors.Is(err, wantErr) || out != Miss || v != nil {
		t.Fatalf("Do = (%v, %v, %v), want (nil, miss, boom)", v, out, err)
	}
	if _, ok := c.Get("k"); ok {
		t.Error("errored computation was stored")
	}
}

func TestLRUEviction(t *testing.T) {
	// Capacity 1 forces a single shard of capacity 1: each insert evicts
	// the previous entry.
	c := New(1)
	ctx := context.Background()
	_, _, e0, _ := counters()
	mk := func(v string) func() (any, bool, error) {
		return func() (any, bool, error) { return v, true, nil }
	}
	c.Do(ctx, "a", mk("va"))
	c.Do(ctx, "b", mk("vb")) // evicts a
	if _, ok := c.Get("a"); ok {
		t.Error("entry a survived past capacity")
	}
	if v, ok := c.Get("b"); !ok || v != "vb" {
		t.Errorf("entry b = (%v, %v), want (vb, true)", v, ok)
	}
	_, _, e1, _ := counters()
	if e1-e0 != 1 {
		t.Errorf("eviction delta = %d, want 1", e1-e0)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestLRUPromotion(t *testing.T) {
	// One shard (capacity 2): touching the older entry must save it from
	// the next eviction.
	c := New(2)
	c.shards = c.shards[:1]
	c.shards[0].capacity = 2
	ctx := context.Background()
	mk := func(v string) func() (any, bool, error) {
		return func() (any, bool, error) { return v, true, nil }
	}
	c.Do(ctx, "a", mk("va"))
	c.Do(ctx, "b", mk("vb"))
	c.Do(ctx, "a", mk("never")) // hit: promotes a
	c.Do(ctx, "c", mk("vc"))    // evicts b, the least recently used
	if _, ok := c.Get("b"); ok {
		t.Error("lru entry b survived eviction")
	}
	if v, ok := c.Get("a"); !ok || v != "va" {
		t.Errorf("promoted entry a = (%v, %v), want (va, true)", v, ok)
	}
}

// TestCoalescing is the strict duplicate-suppression property: K
// concurrent identical keys run the computation exactly once — one Miss,
// K-1 Coalesced — and every caller sees the same value.
func TestCoalescing(t *testing.T) {
	c := New(8)
	ctx := context.Background()
	const K = 16
	_, m0, _, c0 := counters()

	var computes atomic.Int64
	release := make(chan struct{})
	entered := make(chan struct{})
	fn := func() (any, bool, error) {
		computes.Add(1)
		close(entered) // leader is in flight
		<-release
		return "shared", true, nil
	}

	outcomes := make(chan Outcome, K)
	vals := make(chan any, K)
	var wg, started sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, out, err := c.Do(ctx, "k", fn)
		if err != nil {
			t.Errorf("leader Do: %v", err)
		}
		outcomes <- out
		vals <- v
	}()
	<-entered // leader holds the flight; everyone else must coalesce
	for i := 1; i < K; i++ {
		wg.Add(1)
		started.Add(1)
		go func() {
			defer wg.Done()
			started.Done()
			v, out, err := c.Do(ctx, "k", fn)
			if err != nil {
				t.Errorf("waiter Do: %v", err)
			}
			outcomes <- out
			vals <- v
		}()
	}
	// Release the leader only after every waiter goroutine is running and
	// has had ample time to park on the flight. A waiter scheduled after
	// the leader finished would read the stored entry as a Hit instead of
	// coalescing — the strict 1-miss/K-1-coalesced assertion below would
	// catch that, so the sleep doubles as the flake guard.
	started.Wait()
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()

	counts := map[Outcome]int{}
	for i := 0; i < K; i++ {
		counts[<-outcomes]++
		if v := <-vals; v != "shared" {
			t.Errorf("caller got %v, want shared", v)
		}
	}
	if computes.Load() != 1 {
		t.Errorf("compute ran %d times, want exactly 1", computes.Load())
	}
	if counts[Miss] != 1 || counts[Coalesced] != K-1 {
		t.Errorf("outcomes = %v, want 1 miss and %d coalesced", counts, K-1)
	}
	_, m1, _, c1 := counters()
	if m1-m0 != 1 || c1-c0 != K-1 {
		t.Errorf("miss/coalesced deltas = %d/%d, want 1/%d", m1-m0, c1-c0, K-1)
	}
}

// TestUncacheableWaitersRetry: waiters never adopt a leader's uncacheable
// (budget-shaped) result; each recomputes under its own budget.
func TestUncacheableWaitersRetry(t *testing.T) {
	c := New(8)
	ctx := context.Background()
	var computes atomic.Int64
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	fn := func() (any, bool, error) {
		n := computes.Add(1)
		if n == 1 {
			entered <- struct{}{}
			<-release
		}
		return fmt.Sprintf("run-%d", n), false, nil
	}
	done := make(chan Outcome, 2)
	go func() {
		_, out, _ := c.Do(ctx, "k", fn)
		done <- out
	}()
	<-entered
	go func() {
		_, out, _ := c.Do(ctx, "k", fn)
		done <- out
	}()
	close(release)
	o1, o2 := <-done, <-done
	if computes.Load() != 2 {
		t.Errorf("compute ran %d times, want 2 (waiter must retry an uncacheable result)", computes.Load())
	}
	if o1 != Miss || o2 != Miss {
		t.Errorf("outcomes = %v, %v, want miss, miss", o1, o2)
	}
}

// TestWaiterContextExpiry: a waiter whose context dies while blocked on a
// leader computes itself (Bypass) instead of waiting forever.
func TestWaiterContextExpiry(t *testing.T) {
	c := New(8)
	release := make(chan struct{})
	entered := make(chan struct{})
	leaderFn := func() (any, bool, error) {
		close(entered)
		<-release
		return "leader", true, nil
	}
	go c.Do(context.Background(), "k", leaderFn)
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	v, out, err := c.Do(ctx, "k", func() (any, bool, error) { return "own", true, nil })
	if err != nil || v != "own" || out != Bypass {
		t.Errorf("expired waiter Do = (%v, %v, %v), want (own, bypass, nil)", v, out, err)
	}
	close(release)
}

func TestNilCache(t *testing.T) {
	var c *Cache
	v, out, err := c.Do(context.Background(), "k", func() (any, bool, error) { return 7, true, nil })
	if err != nil || v != 7 || out != Bypass {
		t.Errorf("nil-cache Do = (%v, %v, %v), want (7, bypass, nil)", v, out, err)
	}
	if c.Len() != 0 {
		t.Errorf("nil-cache Len = %d, want 0", c.Len())
	}
	if _, ok := c.Get("k"); ok {
		t.Error("nil-cache Get reported a value")
	}
	if New(0) != nil {
		t.Error("New(0) should return the nil (disabled) cache")
	}
}

// TestConcurrentHammer drives many goroutines over overlapping keys under
// the race detector: values must always be the one stored for their key.
func TestConcurrentHammer(t *testing.T) {
	c := New(32)
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%50)
				want := "v-" + key
				v, _, err := c.Do(ctx, key, func() (any, bool, error) {
					return want, i%3 != 0, nil // mix cacheable and not
				})
				if err != nil {
					t.Errorf("Do(%s): %v", key, err)
					return
				}
				if v != want {
					t.Errorf("Do(%s) = %v, want %v", key, v, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
