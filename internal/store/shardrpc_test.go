package store

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"gqa/internal/budget"
	"gqa/internal/faultpoint"
)

func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// exportShardParts saves every shard part of the (sharded, frozen) graph
// through the GQASHR1 encoder and loads it back — the exact bytes a
// gqa-shard process would serve from.
func exportShardParts(t *testing.T, g *Graph, k int) []*ShardPart {
	t.Helper()
	parts := make([]*ShardPart, k)
	for i := 0; i < k; i++ {
		var buf bytes.Buffer
		if err := SaveShardPart(&buf, g, i); err != nil {
			t.Fatalf("SaveShardPart(%d): %v", i, err)
		}
		sp, err := LoadShardPart(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("LoadShardPart(%d): %v", i, err)
		}
		parts[i] = sp
	}
	return parts
}

// startLoopbackShards shards g into k parts, round-trips each through the
// file format, and serves each from an in-process ShardServer on a
// loopback TCP listener. Returns the addresses in shard order plus the
// live servers (for kill-a-shard tests); cleanup stops everything.
func startLoopbackShards(t *testing.T, g *Graph, k int) ([]string, []*ShardServer) {
	t.Helper()
	g.SetShards(k)
	g.Freeze()
	parts := exportShardParts(t, g, k)
	addrs := make([]string, k)
	servers := make([]*ShardServer, k)
	for i := 0; i < k; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := NewShardServer(parts[i])
		go srv.Serve(ln) //nolint:errcheck
		addrs[i] = ln.Addr().String()
		servers[i] = srv
		t.Cleanup(srv.Close)
	}
	return addrs, servers
}

// TestShardPartRoundtrip pins the GQASHR1 format: every part of a sharded
// freeze survives save/load byte-exactly (same arrays, same boundary
// index, same roles and signatures).
func TestShardPartRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g := randomRichGraph(r)
	const k = 4
	g.SetShards(k)
	g.Freeze()
	ss := g.FrozenView().(*ShardSet)
	for i := 0; i < k; i++ {
		var buf bytes.Buffer
		if err := SaveShardPart(&buf, g, i); err != nil {
			t.Fatalf("SaveShardPart(%d): %v", i, err)
		}
		loaded, err := LoadShardPart(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("LoadShardPart(%d): %v", i, err)
		}
		want, got := *ss.Part(i).part, *loaded.part
		// bytes is a derived memory-accounting estimate, not data.
		want.bytes, got.bytes = 0, 0
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("shard %d diverges after roundtrip:\nwant %+v\ngot  %+v", i, want, got)
		}
	}
}

// TestShardPartCorruptionRejected flips bytes across a saved part and
// requires the loader to reject (never panic, never accept) every
// corrupted variant, plus every truncation.
func TestShardPartCorruptionRejected(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := randomRichGraph(r)
	g.SetShards(3)
	g.Freeze()
	var buf bytes.Buffer
	if err := SaveShardPart(&buf, g, 1); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for off := 0; off < len(raw); off += 41 {
		cp := append([]byte(nil), raw...)
		cp[off] ^= 0x5a
		if _, err := LoadShardPart(bytes.NewReader(cp)); err == nil {
			t.Fatalf("flip at offset %d accepted", off)
		}
	}
	for cut := 0; cut < len(raw); cut += 107 {
		if _, err := LoadShardPart(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := LoadShardPart(bytes.NewReader(append(append([]byte(nil), raw...), 0))); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// edgesEqual and sposEqual live in frzsnap_test.go / query_test.go.

// TestRemoteShardSetEquivalence is the wire-level differential: every
// read on a RemoteShardSet over loopback shard servers returns exactly
// what the monolithic Snapshot returns, in the same order — the same
// contract TestShardSetEquivalence pins for the in-process ShardSet, one
// process boundary later.
func TestRemoteShardSetEquivalence(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		for _, k := range []int{2, 4} {
			r := rand.New(rand.NewSource(seed))
			g := randomRichGraph(r)
			sn := buildSnapshot(g, g.gen.Load())
			addrs, _ := startLoopbackShards(t, g, k)
			rss, err := DialShards(addrs, g.Terms(), RemoteOptions{})
			if err != nil {
				t.Fatalf("seed %d k %d: DialShards: %v", seed, k, err)
			}
			t.Cleanup(rss.Close)

			if rss.NumShards() != k {
				t.Fatalf("NumShards = %d, want %d", rss.NumShards(), k)
			}
			if rss.Generation() != sn.Generation() || rss.NumTerms() != sn.NumTerms() ||
				rss.NumTriples() != sn.NumTriples() || rss.TypeID() != sn.TypeID() {
				t.Fatalf("seed %d k %d: identity metadata diverges", seed, k)
			}
			if !reflect.DeepEqual(rss.Stats(), sn.Stats()) {
				t.Fatalf("seed %d k %d: Stats %+v, want %+v", seed, k, rss.Stats(), sn.Stats())
			}
			if !reflect.DeepEqual(rss.Entities(), sn.Entities()) {
				t.Fatalf("seed %d k %d: Entities diverge", seed, k)
			}

			n := ID(g.NumTerms())
			preds := make([]ID, 0, 8)
			for v := ID(0); v < n; v++ {
				if g.Term(v).IsIRI() {
					preds = append(preds, v)
				}
			}
			for v := ID(0); v < n; v++ {
				if rss.OutDegree(v) != sn.OutDegree(v) || rss.InDegree(v) != sn.InDegree(v) ||
					rss.Degree(v) != sn.Degree(v) {
					t.Fatalf("seed %d k %d: degrees diverge at %d", seed, k, v)
				}
				if rss.IsEntity(v) != sn.IsEntity(v) || rss.IsClass(v) != sn.IsClass(v) {
					t.Fatalf("seed %d k %d: roles diverge at %d", seed, k, v)
				}
				for _, p := range preds {
					if !edgesEqual(rss.OutPred(v, p), sn.OutPred(v, p)) {
						t.Fatalf("seed %d k %d: OutPred(%d,%d) diverges", seed, k, v, p)
					}
					if !edgesEqual(rss.InPred(v, p), sn.InPred(v, p)) {
						t.Fatalf("seed %d k %d: InPred(%d,%d) diverges", seed, k, v, p)
					}
					if rss.HasAdjacentPred(v, p) != sn.HasAdjacentPred(v, p) {
						t.Fatalf("seed %d k %d: HasAdjacentPred(%d,%d) diverges", seed, k, v, p)
					}
					if rss.OutPredDegree(v, p) != sn.OutPredDegree(v, p) ||
						rss.InPredDegree(v, p) != sn.InPredDegree(v, p) {
						t.Fatalf("seed %d k %d: pred degrees diverge at (%d,%d)", seed, k, v, p)
					}
				}
			}

			// Every Match pattern shape, exact order.
			check := func(s, p, o ID) {
				t.Helper()
				if got, want := collectExact(rss.Match, s, p, o), collectExact(sn.Match, s, p, o); !sposEqual(got, want) {
					t.Fatalf("seed %d k %d: Match(%v,%v,%v) = %v, want %v", seed, k, s, p, o, got, want)
				}
			}
			check(Any, Any, Any)
			for _, p := range preds {
				check(Any, p, Any)
			}
			all := collectExact(sn.Match, Any, Any, Any)
			for i, tr := range all {
				if i%5 != 0 {
					continue
				}
				check(tr.S, Any, Any)
				check(Any, Any, tr.O)
				check(tr.S, tr.P, Any)
				check(tr.S, Any, tr.O)
				check(Any, tr.P, tr.O)
				check(tr.S, tr.P, tr.O)
				if !rss.Has(tr.S, tr.P, tr.O) {
					t.Fatalf("seed %d k %d: Has(%v) = false for a present triple", seed, k, tr)
				}
			}
			if rss.Has(all[0].S, all[0].P, None) {
				t.Fatalf("seed %d k %d: Has of an absent triple", seed, k)
			}
			rss.Close()
		}
	}
}

// TestRemoteFailureModes is the failure-mode table: each injected fault —
// a straggling server past the call timeout, a refused dial, a mid-stream
// connection cut, a server-side panic — must end in bounded, budget-
// flagged degradation with the documented retry behaviour, never a hang.
func TestRemoteFailureModes(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := randomRichGraph(r)
	addrs, _ := startLoopbackShards(t, g, 2)
	opts := RemoteOptions{
		DialTimeout:  200 * time.Millisecond,
		CallTimeout:  80 * time.Millisecond,
		Retries:      2,
		RetryBackoff: time.Millisecond,
		HedgeAfter:   -1, // disabled: retry counts must be deterministic
		DownCooldown: 50 * time.Millisecond,
	}
	// A vertex with outgoing edges, for a read that must touch the wire.
	sn := buildSnapshot(g, g.gen.Load())
	var probe Spo
	sn.Match(Any, Any, Any, func(s Spo) bool { probe = s; return false })

	cases := []struct {
		name      string
		point     string
		fault     faultpoint.Fault
		wantCalls int64 // attempts for the single probed read
		wantRetry int64
	}{
		{"server delay past call timeout", faultpoint.RPCCall,
			faultpoint.Fault{Delay: 300 * time.Millisecond}, 3, 2},
		{"dial refused", faultpoint.RPCDial,
			faultpoint.Fault{Err: errors.New("connection refused")}, 3, 2},
		{"mid-stream connection cut", faultpoint.RPCCall,
			faultpoint.Fault{Err: ErrShardCut}, 3, 2},
		{"server panic", faultpoint.RPCCall,
			faultpoint.Fault{PanicMsg: "boom"}, 1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rss, err := DialShards(addrs, g.Terms(), opts)
			if err != nil {
				t.Fatal(err)
			}
			defer rss.Close()
			if tc.point == faultpoint.RPCDial {
				// Drain pooled connections so the read must dial.
				for _, p := range rss.pools {
					p.closeAll()
				}
			}
			faultpoint.Set(tc.point, tc.fault)
			defer faultpoint.Reset()

			ctx, cancel := contextWithTimeout(2 * time.Second)
			defer cancel()
			tr := budget.New(ctx, budget.Limits{})
			bv := rss.BindRequest(tr, nil)

			start := time.Now()
			span := bv.OutPred(probe.S, probe.P)
			elapsed := time.Since(start)

			if len(span) != 0 {
				t.Fatalf("degraded read returned %d edges, want 0", len(span))
			}
			if got := tr.Exhausted(); got != budget.ReasonShard {
				t.Fatalf("budget reason = %q, want %q", got, budget.ReasonShard)
			}
			st := bv.(*boundRemote).st
			if st.calls.Load() != tc.wantCalls {
				t.Fatalf("calls = %d, want %d", st.calls.Load(), tc.wantCalls)
			}
			if st.retries.Load() != tc.wantRetry {
				t.Fatalf("retries = %d, want %d", st.retries.Load(), tc.wantRetry)
			}
			if st.errs.Load() == 0 {
				t.Fatal("no error recorded on the request state")
			}
			// Bounded: three 80 ms attempts plus backoff, not a hang.
			if elapsed > 1500*time.Millisecond {
				t.Fatalf("degradation took %s — unbounded retry?", elapsed)
			}
			// The shard is marked down: the next read fails fast.
			if !rss.pools[int(probe.S)%2].isDown() && tc.wantRetry > 0 {
				t.Fatal("shard not marked down after exhausted retries")
			}
			faultpoint.Reset()
		})
	}

	t.Run("budget deadline bounds attempts", func(t *testing.T) {
		rss, err := DialShards(addrs, g.Terms(), opts)
		if err != nil {
			t.Fatal(err)
		}
		defer rss.Close()
		faultpoint.Set(faultpoint.RPCCall, faultpoint.Fault{Delay: 300 * time.Millisecond})
		defer faultpoint.Reset()
		// The request deadline expires inside the first attempt: no retry
		// may start after it, and the reason stays "deadline" (first trip
		// wins).
		ctx, cancel := contextWithTimeout(40 * time.Millisecond)
		defer cancel()
		tr := budget.New(ctx, budget.Limits{})
		bv := rss.BindRequest(tr, nil)
		start := time.Now()
		bv.OutPred(probe.S, probe.P)
		if e := time.Since(start); e > 500*time.Millisecond {
			t.Fatalf("deadline-bounded call took %s", e)
		}
		st := bv.(*boundRemote).st
		if st.calls.Load() != 1 {
			t.Fatalf("calls = %d, want 1 (deadline must stop retries)", st.calls.Load())
		}
		if got := tr.Exhausted(); got != budget.ReasonDeadline {
			t.Fatalf("reason = %q, want %q", got, budget.ReasonDeadline)
		}
	})

	t.Run("server error frame is not retried", func(t *testing.T) {
		rss, err := DialShards(addrs, g.Terms(), opts)
		if err != nil {
			t.Fatal(err)
		}
		defer rss.Close()
		faultpoint.Set(faultpoint.RPCCall, faultpoint.Fault{Err: errors.New("synthetic server failure")})
		defer faultpoint.Reset()
		_, err = rss.call(nil, 0, []byte{shrOpPing})
		if err == nil || !strings.Contains(err.Error(), "synthetic server failure") {
			t.Fatalf("err = %v, want the server-reported error", err)
		}
		var srv *errServer
		if !errors.As(err, &srv) {
			t.Fatalf("err %T is not a server error", err)
		}
	})
}

// TestRemoteHedgedGather pins the hedge path: with every shard answering
// slowly (but inside the call timeout), a predicate-major gather launches
// hedged second attempts and still returns exactly the local result.
func TestRemoteHedgedGather(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := randomRichGraph(r)
	sn := buildSnapshot(g, g.gen.Load())
	addrs, _ := startLoopbackShards(t, g, 2)
	rss, err := DialShards(addrs, g.Terms(), RemoteOptions{
		CallTimeout: 2 * time.Second,
		HedgeAfter:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rss.Close()
	faultpoint.Set(faultpoint.RPCCall, faultpoint.Fault{Delay: 60 * time.Millisecond})
	defer faultpoint.Reset()

	var p ID = None
	for v := ID(0); v < ID(g.NumTerms()); v++ {
		if sn.PredCount(v) > 0 {
			p = v
			break
		}
	}
	if p == None {
		t.Skip("no predicate in graph")
	}
	bv := rss.BindRequest(nil, nil)
	got := collectExact(bv.Match, Any, p, Any)
	want := collectExact(sn.Match, Any, p, Any)
	if !sposEqual(got, want) {
		t.Fatalf("hedged gather diverges: got %d triples, want %d", len(got), len(want))
	}
	if bv.(*boundRemote).st.hedges.Load() == 0 {
		t.Fatal("no hedge launched despite every shard straggling")
	}
}

// TestRemoteShardKilledDegrades kills one live shard server outright and
// requires reads over the remaining topology to degrade promptly.
func TestRemoteShardKilledDegrades(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	g := randomRichGraph(r)
	addrs, servers := startLoopbackShards(t, g, 2)
	rss, err := DialShards(addrs, g.Terms(), RemoteOptions{
		CallTimeout:  100 * time.Millisecond,
		Retries:      1,
		RetryBackoff: time.Millisecond,
		DownCooldown: time.Hour, // stay down for the rest of the test
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rss.Close()

	servers[1].Close()

	ctx, cancel := contextWithTimeout(5 * time.Second)
	defer cancel()
	tr := budget.New(ctx, budget.Limits{})
	bv := rss.BindRequest(tr, nil)

	// A full scan gathers from both shards: shard 0 serves, shard 1 fails.
	start := time.Now()
	count := 0
	bv.Match(Any, Any, Any, func(Spo) bool { count++; return true })
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("scan over a killed shard took %s", e)
	}
	if got := tr.Exhausted(); got != budget.ReasonShard {
		t.Fatalf("reason = %q, want %q", got, budget.ReasonShard)
	}
	// After the breaker opens, further reads to the dead shard are instant.
	start = time.Now()
	bv.Match(Any, Any, Any, func(Spo) bool { return true })
	if e := time.Since(start); e > time.Second {
		t.Fatalf("post-breaker scan took %s", e)
	}
}
