package gqa

// Answer-cache layer of the facade. Serving traffic is heavily repetitive,
// so AnswerContext and QueryContext consult a generation-aware LRU (see
// internal/qcache) before running the pipeline:
//
//   - Keys are (normalized input, graph mutation generation, options
//     fingerprint, engine salt). Any graph mutation bumps the generation
//     and silently retires every cached result; changing TopK, candidate
//     caps, heuristics, or aggregation changes the fingerprint; replacing
//     the dictionary or registering a superlative bumps the salt.
//   - Entries are immutable deep copies: the pipeline's answer is cloned
//     into the cache, and every hit clones back out, so no caller can
//     mutate a shared Answer or Result.
//   - Degraded/truncated results are never cached. They reflect the
//     caller's budget, not the data — a cached one would serve someone
//     else's timeout forever.
//   - Identical in-flight questions coalesce: N concurrent calls run the
//     pipeline once and share the (cloned) result.
//
// A cache hit also replays the per-match "match" spans (score + rendered
// disambiguation) onto the caller's trace, so ExplainContext over a cached
// answer returns exactly the lines an uncached run would.

import (
	"context"
	"fmt"
	"strings"

	"gqa/internal/core"
	"gqa/internal/obs"
	"gqa/internal/sparql"
)

// cachedAnswer is one stored question result: the immutable master copy of
// the answer plus the rendered explain line of each top match, kept so a
// hit can replay them onto an enabled trace.
type cachedAnswer struct {
	ans     *Answer
	renders []matchRender
}

// matchRender is one top match's trace payload: what the pipeline would
// have recorded as a "match" span under an enabled trace.
type matchRender struct {
	score  float64
	render string
}

// normalizeQuestion canonicalizes insignificant whitespace — the tokenizer
// splits on it, so "who  is" and "who is" are the same question. Case is
// preserved: it can carry meaning through entity mentions.
func normalizeQuestion(q string) string {
	return strings.Join(strings.Fields(q), " ")
}

// cacheKey assembles the cache key for one input. kind separates the
// answer and SPARQL namespaces; the generation key and salt components are
// the invalidation tokens; the fingerprint covers every option that shapes
// a non-degraded result (Parallelism and Budget are deliberately absent —
// parallel answers are byte-identical to sequential, and budget-shaped
// answers are degraded and never cached). On a sharded store the
// generation key is the full generation vector (global plus per-shard), so
// re-sharding or a single-shard mutation retires stale entries while
// answers cached before an unrelated salt bump still need no recompute.
func (s *System) cacheKey(kind, input string) string {
	o := s.core.Opts
	return fmt.Sprintf("%s\x00%s\x00%s.s%d\x00k%d.c%d.h%t.a%t",
		kind, input, s.graph.GenKey(), s.cacheSalt.Load(),
		o.TopK, o.MaxVertexCandidates, o.DisableHeuristicRules, o.EnableAggregation)
}

// clone returns a deep copy of the answer sharing no mutable state with
// the receiver. The trace is dropped: it belongs to the call that recorded
// it, never to the cache.
func (a *Answer) clone() *Answer {
	cp := *a
	cp.Labels = append([]string(nil), a.Labels...)
	cp.IRIs = append([]string(nil), a.IRIs...)
	if a.Boolean != nil {
		b := *a.Boolean
		cp.Boolean = &b
	}
	cp.Trace = nil
	return &cp
}

// cloneResult deep-copies a SPARQL result (rows are maps; terms are
// immutable values).
func cloneResult(r *sparql.Result) *sparql.Result {
	cp := &sparql.Result{
		Kind:      r.Kind,
		Vars:      append([]string(nil), r.Vars...),
		Boolean:   r.Boolean,
		Truncated: r.Truncated,
	}
	if r.Rows != nil {
		cp.Rows = make([]sparql.Row, len(r.Rows))
		for i, row := range r.Rows {
			m := make(sparql.Row, len(row))
			for k, v := range row {
				m[k] = v
			}
			cp.Rows[i] = m
		}
	}
	return cp
}

// answerCached is AnswerShed's cache-enabled path: look up, coalesce, or
// run the pipeline and store. Callers have already applied the timeout
// and frozen the graph; eng carries any per-call shed budget. The shed
// tier deliberately stays out of the cache key: a complete (non-degraded)
// answer is identical at every tier — budgets only change results when
// they truncate, and truncated results are never cached — so entries
// written at tier 0 serve tier-3 callers and vice versa, which is exactly
// what keeps an overloaded server fast.
func (s *System) answerCached(ctx context.Context, question string, eng *core.System, tier int) (*Answer, error) {
	key := s.cacheKey("a", normalizeQuestion(question))
	sp := obs.TraceFrom(ctx).Root().Child("cache.lookup")
	var leaderAns *Answer
	v, outcome, err := s.cache.Do(ctx, key, func() (any, bool, error) {
		res, err := eng.AnswerContext(ctx, question)
		if err != nil {
			return nil, false, err
		}
		leaderAns = s.buildAnswer(res)
		if leaderAns.Degraded != "" {
			// Budget-shaped: correct for this caller, poison for the next.
			return nil, false, nil
		}
		ent := &cachedAnswer{ans: leaderAns.clone()}
		for i := range res.Matches {
			ent.renders = append(ent.renders, matchRender{
				score:  res.Matches[i].Score,
				render: core.RenderMatch(s.graph, res.Query, &res.Matches[i]),
			})
		}
		return ent, true, nil
	})
	sp.SetStr("outcome", string(outcome))
	sp.Finish()
	if err != nil {
		return nil, err
	}
	if leaderAns != nil {
		// This call ran the pipeline itself (miss or bypass); its answer
		// was never shared, so it needs no copy. The stored entry was
		// cloned before annotation, so the shed marking below stays
		// private to this caller.
		return shedAnnotate(leaderAns, tier), nil
	}
	ent := v.(*cachedAnswer)
	// Hit or coalesced: replay the match spans so Explain over a cached
	// answer renders identically to an uncached run, then hand out a
	// private copy of the shared entry.
	if root := obs.TraceFrom(ctx).Root(); root.Enabled() {
		for _, r := range ent.renders {
			m := root.Child("match")
			m.SetFloat("score", r.score)
			m.SetStr("render", r.render)
			m.Finish()
		}
	}
	return ent.ans.clone(), nil
}

// queryCached is QueryContext's cache-enabled path. SPARQL text is keyed
// verbatim (trimmed only): whitespace inside quoted literals is
// significant, so no collapsing.
func (s *System) queryCached(ctx context.Context, src string, q *sparql.Query) (*sparql.Result, error) {
	key := s.cacheKey("q", strings.TrimSpace(src))
	sp := obs.TraceFrom(ctx).Root().Child("cache.lookup")
	var leaderRes *sparql.Result
	v, outcome, err := s.cache.Do(ctx, key, func() (any, bool, error) {
		res, err := sparql.EvalContext(ctx, s.graph, q, s.budget.limits())
		if err != nil {
			return nil, false, err
		}
		leaderRes = res
		if res.Truncated != "" {
			return nil, false, nil
		}
		return cloneResult(res), true, nil
	})
	sp.SetStr("outcome", string(outcome))
	sp.Finish()
	if err != nil {
		return nil, err
	}
	if leaderRes != nil {
		return leaderRes, nil
	}
	return cloneResult(v.(*sparql.Result)), nil
}
