package sparql

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"gqa/internal/budget"
	"gqa/internal/faultpoint"
	"gqa/internal/obs"
	"gqa/internal/rdf"
	"gqa/internal/store"
)

// Evaluation metrics: query traffic, rows produced after projection, and
// join latency. Incremented once per evaluation, outside the join loop.
var (
	evalTotal = obs.DefaultCounter("gqa_sparql_eval_total",
		"SPARQL queries evaluated (backtracking joins run).")
	evalRows = obs.DefaultCounter("gqa_sparql_rows_total",
		"Result rows produced across all evaluations (post-projection).")
	evalSeconds = obs.DefaultHistogram("gqa_sparql_eval_seconds",
		"SPARQL evaluation latency per query.", nil)
)

// Row is one solution: variable name → bound term.
type Row map[string]rdf.Term

// Result holds the outcome of evaluating a query.
type Result struct {
	Kind    Kind
	Vars    []string // projected variables in order
	Rows    []Row    // SELECT solutions
	Boolean bool     // ASK outcome
	// Truncated is the budget-exhaustion reason ("deadline", "canceled",
	// "steps", "rows") when the join was cut short and Rows holds only the
	// solutions found in time; "" for a complete evaluation.
	Truncated string
}

// Eval evaluates a parsed query against the graph by backtracking join
// over the basic graph pattern, most-selective pattern first, with no
// budget.
func Eval(g *store.Graph, q *Query) (*Result, error) {
	return evalTracked(g, q, nil)
}

// EvalContext evaluates q under ctx and the given limits. An exhausted
// budget stops the backtracking join where it stands; the partial rows
// found so far are still filtered, ordered, and projected, and
// Result.Truncated names the exhausted resource. A Background context with
// zero limits is exactly Eval.
func EvalContext(ctx context.Context, g *store.Graph, q *Query, l budget.Limits) (*Result, error) {
	sp := obs.TraceFrom(ctx).Root().Child("sparql.eval")
	res, err := evalTracked(g, q, budget.New(ctx, l))
	if res != nil {
		sp.SetInt("rows", int64(len(res.Rows)))
		sp.SetStr("truncated", res.Truncated)
	}
	sp.Finish()
	return res, err
}

func evalTracked(g *store.Graph, q *Query, tr *budget.Tracker) (*Result, error) {
	start := time.Now()
	evalTotal.Inc()
	res := &Result{Kind: q.Kind, Vars: q.Vars}
	defer func() {
		evalRows.Add(int64(len(res.Rows)))
		evalSeconds.ObserveDuration(time.Since(start))
	}()
	if len(res.Vars) == 0 {
		res.Vars = q.AllVars()
	}
	for _, v := range res.Vars {
		if !containsVar(q, v) {
			return nil, fmt.Errorf("sparql: projected variable ?%s not used in pattern", v)
		}
	}

	// A constant-only pattern set (ASK with no vars) degenerates to
	// membership checks.
	binding := make(map[string]store.ID)
	order := planOrder(g, q.Patterns)

	// Capture the frozen CSR snapshot once for the whole evaluation: every
	// pattern scan then dispatches through sorted-span binary searches
	// without re-loading the graph's snapshot pointer per call. An
	// unfrozen graph keeps the mutable index dispatch.
	match := g.Match
	var boundView store.View
	if fv := g.FrozenView(); fv != nil {
		// A remote view binds to this evaluation's tracker so shard-RPC
		// deadlines follow the request budget and an unreachable shard
		// degrades (Truncated = "shard-unavailable") instead of hanging.
		if rb, ok := fv.(store.RequestBindable); ok {
			fv = rb.BindRequest(tr, nil)
			boundView = fv
		}
		match = fv.Match
	}

	limit := q.Limit
	want := -1 // unlimited
	if q.Kind == KindAsk && len(q.Filters) == 0 {
		want = 1
	} else if limit > 0 && len(q.OrderBy) == 0 && len(q.Filters) == 0 {
		want = q.Offset + limit
	}

	var rows []map[string]store.ID
	var walk func(step int) bool // returns true to stop
	walk = func(step int) bool {
		faultpoint.Hit(faultpoint.SparqlEval)
		if !tr.Step() {
			return true
		}
		if step == len(order) {
			if !tr.Row() {
				return true
			}
			cp := make(map[string]store.ID, len(binding))
			for k, v := range binding {
				cp[k] = v
			}
			rows = append(rows, cp)
			return want >= 0 && len(rows) >= want && !needDistinctOverflow(q)
		}
		pat := order[step]
		s, sOK := resolve(g, binding, pat.S)
		p, pOK := resolve(g, binding, pat.P)
		o, oOK := resolve(g, binding, pat.O)
		if !sOK || !pOK || !oOK {
			// A constant term absent from the graph: no solutions from
			// this branch.
			return false
		}
		stop := false
		match(s, p, o, func(t store.Spo) bool {
			var bound []string
			ok := true
			tryBind := func(term Term, id store.ID) {
				if !ok || !term.IsVar() {
					return
				}
				if prev, exists := binding[term.Var]; exists {
					if prev != id {
						ok = false
					}
					return
				}
				binding[term.Var] = id
				bound = append(bound, term.Var)
			}
			tryBind(pat.S, t.S)
			tryBind(pat.P, t.P)
			tryBind(pat.O, t.O)
			if ok && walk(step+1) {
				stop = true
			}
			for _, v := range bound {
				delete(binding, v)
			}
			return !stop
		})
		return stop
	}
	walk(0)
	res.Truncated = tr.Exhausted()
	if res.Truncated == "" && boundView != nil {
		if dr, ok := boundView.(store.DegradeReporter); ok {
			res.Truncated = dr.DegradeReason()
		}
	}

	// FILTER constraints on the complete bindings.
	if len(q.Filters) > 0 {
		kept := rows[:0]
		for _, b := range rows {
			ok := true
			for _, f := range q.Filters {
				if !evalFilter(g, b, f) {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, b)
			}
		}
		rows = kept
	}

	if q.Kind == KindAsk {
		res.Boolean = len(rows) > 0
		return res, nil
	}

	// ORDER BY before projection (keys need not be projected).
	if len(q.OrderBy) > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			return orderLess(g, rows[i], rows[j], q.OrderBy)
		})
	}

	// Project, deduplicate (DISTINCT), then apply OFFSET/LIMIT.
	seen := make(map[string]bool)
	for _, b := range rows {
		row := make(Row, len(res.Vars))
		var key strings.Builder
		for _, v := range res.Vars {
			if id, ok := b[v]; ok {
				row[v] = g.Term(id)
			}
			key.WriteString(row[v].Key())
			key.WriteByte('\x01')
		}
		if q.Distinct {
			if seen[key.String()] {
				continue
			}
			seen[key.String()] = true
		}
		res.Rows = append(res.Rows, row)
	}
	if q.Offset > 0 {
		if q.Offset >= len(res.Rows) {
			res.Rows = nil
		} else {
			res.Rows = res.Rows[q.Offset:]
		}
	}
	if q.Limit > 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	return res, nil
}

// needDistinctOverflow: with DISTINCT, stopping at `want` raw rows could
// undercount after dedup, so keep going.
func needDistinctOverflow(q *Query) bool { return q.Distinct }

func containsVar(q *Query, v string) bool {
	for _, p := range q.Patterns {
		for _, t := range []Term{p.S, p.P, p.O} {
			if t.Var == v {
				return true
			}
		}
	}
	return false
}

// EvalString parses and evaluates in one step.
func EvalString(g *store.Graph, src string) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Eval(g, q)
}

// resolve maps a pattern term to a concrete ID (bound variable or interned
// constant) or the wildcard. ok=false means a constant that cannot match.
func resolve(g *store.Graph, binding map[string]store.ID, t Term) (store.ID, bool) {
	if t.IsVar() {
		if id, ok := binding[t.Var]; ok {
			return id, true
		}
		return store.Any, true
	}
	id, ok := g.Lookup(t.Const)
	if !ok {
		return store.Any, false
	}
	return id, true
}

// planOrder sorts patterns most-selective first: more constants first,
// then rarer predicates; patterns sharing variables with already-planned
// ones are preferred to keep the join connected.
func planOrder(g *store.Graph, pats []Pattern) []Pattern {
	remaining := append([]Pattern(nil), pats...)
	var out []Pattern
	boundVars := make(map[string]bool)

	selectivity := func(p Pattern) int {
		score := 0
		for _, t := range []Term{p.S, p.P, p.O} {
			if !t.IsVar() || boundVars[t.Var] {
				score += 100
			}
		}
		if !p.P.IsVar() {
			if id, ok := g.Lookup(p.P.Const); ok {
				score -= g.PredCount(id) / 16
			}
		}
		return score
	}

	for len(remaining) > 0 {
		best, bestScore := 0, -1<<30
		for i, p := range remaining {
			if s := selectivity(p); s > bestScore {
				best, bestScore = i, s
			}
		}
		p := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		out = append(out, p)
		for _, t := range []Term{p.S, p.P, p.O} {
			if t.IsVar() {
				boundVars[t.Var] = true
			}
		}
	}
	return out
}

func boundTerm(g *store.Graph, b map[string]store.ID, v string) (rdf.Term, bool) {
	id, ok := b[v]
	if !ok {
		return rdf.Term{}, false
	}
	return g.Term(id), true
}

// orderLess is the ORDER BY comparator: does row a sort strictly before
// row b under keys? A row missing a key sorts after every bound row on
// that key, regardless of ASC/DESC (SPARQL puts unbound lowest; we follow
// the more useful serving convention of unbound-last either way).
func orderLess(g *store.Graph, a, b map[string]store.ID, keys []OrderKey) bool {
	for _, k := range keys {
		ta, aok := boundTerm(g, a, k.Var)
		tb, bok := boundTerm(g, b, k.Var)
		if !aok || !bok {
			if aok != bok {
				return aok // unbound sorts last
			}
			continue
		}
		c := compareTerms(ta, tb)
		if c != 0 {
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
	}
	return false
}

// evalFilter evaluates one FILTER comparison under a binding. An unbound
// variable makes the filter false (SPARQL's error semantics).
func evalFilter(g *store.Graph, b map[string]store.ID, f Filter) bool {
	resolveOperand := func(t Term) (rdf.Term, bool) {
		if t.IsVar() {
			return boundTerm(g, b, t.Var)
		}
		return t.Const, true
	}
	l, lok := resolveOperand(f.Left)
	r, rok := resolveOperand(f.Right)
	if !lok || !rok {
		return false
	}
	c := compareTerms(l, r)
	switch f.Op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	}
	return false
}

// compareTerms compares numerically when both terms are numeric literals,
// lexicographically (Term ordering) otherwise.
func compareTerms(a, b rdf.Term) int {
	if av, aok := numericValue(a); aok {
		if bv, bok := numericValue(b); bok {
			switch {
			case av < bv:
				return -1
			case av > bv:
				return 1
			}
			return 0
		}
	}
	return a.Compare(b)
}

func numericValue(t rdf.Term) (float64, bool) {
	if !t.IsLiteral() {
		return 0, false
	}
	v, err := strconv.ParseFloat(t.Value(), 64)
	return v, err == nil
}

// SortRows orders rows deterministically by the projected variables —
// useful for tests and stable CLI output.
func SortRows(res *Result) {
	sort.SliceStable(res.Rows, func(i, j int) bool {
		for _, v := range res.Vars {
			c := res.Rows[i][v].Compare(res.Rows[j][v])
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
}
