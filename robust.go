package gqa

// Robustness layer of the facade: per-question budgets, context-aware
// entry points, and panic containment. A serving deployment answers
// questions from untrusted users, and the top-k subgraph search is
// worst-case exponential in the query graph — one pathological question
// must never wedge a goroutine or take down the process. AnswerContext
// and QueryContext honor context deadlines/cancellation plus the step,
// candidate, and row limits in Options.Budget, degrade to the best
// partial result found in time (Answer.Degraded / Result.Truncated name
// the exhausted resource), and convert pipeline panics into structured
// *PipelineError values instead of crashing.

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"gqa/internal/budget"
	"gqa/internal/obs"
	"gqa/internal/sparql"
)

// Budget bounds the resources one question (or SPARQL query) may consume.
// The zero value means unlimited everywhere; the engine then behaves
// bit-identically to the budget-free pipeline.
type Budget struct {
	// Timeout is the wall-clock budget per call. AnswerContext and
	// QueryContext additionally honor any deadline or cancellation on the
	// caller's context; whichever is tighter wins. Zero means no timeout.
	Timeout time.Duration
	// MaxSearchSteps caps subgraph-search extensions (and SPARQL join
	// steps): the unit of work of Algorithm 2/3's exploration.
	MaxSearchSteps int64
	// MaxCandidates caps candidate entity expansions during anchored
	// search (a class anchor can expand to tens of thousands of seeds).
	MaxCandidates int64
	// MaxSPARQLRows caps rows materialized by the SPARQL join before
	// projection.
	MaxSPARQLRows int64
}

// limits converts the facade budget to the internal form (the wall-clock
// part rides on the context instead).
func (b Budget) limits() budget.Limits {
	return budget.Limits{
		MaxSteps:      b.MaxSearchSteps,
		MaxCandidates: b.MaxCandidates,
		MaxRows:       b.MaxSPARQLRows,
	}
}

// PipelineError is a panic from the answering pipeline converted into a
// structured error: the input that triggered it, the stage it escaped
// from, the panic value, and the stack. The engine never lets a
// pathological question crash the process; it returns one of these.
type PipelineError struct {
	// Input is the question (stage "answer"/"explain") or the SPARQL
	// source (stage "query") being processed when the panic fired.
	Input string
	// Stage is "answer", "explain", or "query".
	Stage string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *PipelineError) Error() string {
	return fmt.Sprintf("gqa: panic in %s pipeline for %q: %v", e.Stage, e.Input, e.Value)
}

// recoverPipeline converts an in-flight panic into a *PipelineError
// assigned to *err. Deferred by every facade entry point.
func recoverPipeline(stage, input string, err *error) {
	if r := recover(); r != nil {
		*err = &PipelineError{Input: input, Stage: stage, Value: r, Stack: debug.Stack()}
	}
}

// withTimeout layers the budget's wall-clock timeout onto ctx.
func (s *System) withTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.budget.Timeout > 0 {
		return context.WithTimeout(ctx, s.budget.Timeout)
	}
	return ctx, func() {}
}

// AnswerContext answers a natural-language question under ctx and the
// system's Budget. When the budget runs out mid-search, the call returns
// promptly with the best partial top-k found so far and Answer.Degraded
// set to the exhausted resource ("deadline", "canceled", "steps",
// "candidates"); a panic anywhere in the pipeline surfaces as a
// *PipelineError. With a Background context and a zero Budget the results
// are identical to Answer's.
func (s *System) AnswerContext(ctx context.Context, question string) (ans *Answer, err error) {
	defer recoverPipeline("answer", question, &err)
	ctx, cancel := s.withTimeout(ctx)
	defer cancel()
	// Re-freeze at the current mutation generation: a pointer load when the
	// graph is unchanged, a rebuild (traced as "store.freeze") after
	// maintenance mutated it, so questions always run on the CSR snapshot.
	s.graph.FreezeCtx(ctx)
	if s.cache != nil {
		return s.answerCached(ctx, question)
	}
	res, err := s.core.AnswerContext(ctx, question)
	if err != nil {
		return nil, err
	}
	return s.buildAnswer(res), nil
}

// AnswerTraced is AnswerContext with per-question tracing enabled: the
// returned Answer carries the question's span tree (Answer.Trace) — stage
// timings, candidate counts, matcher rounds, budget spent — rendered with
// Trace.Tree() or Trace.JSON(). Tracing is per-call: concurrent untraced
// questions still take the zero-overhead nil-trace path. A caller that
// already carries a trace on ctx (obs.WithTrace) can use AnswerContext
// directly; this wrapper exists so the common case needs no obs import.
func (s *System) AnswerTraced(ctx context.Context, question string) (*Answer, error) {
	tr := obs.NewTrace("answer", question)
	ans, err := s.AnswerContext(obs.WithTrace(ctx, tr), question)
	tr.Finish()
	if ans != nil {
		ans.Trace = tr
	}
	return ans, err
}

// QueryContext evaluates a SPARQL query under ctx and the system's
// Budget. An exhausted budget yields the rows found so far with
// Result.Truncated set; panics surface as *PipelineError.
func (s *System) QueryContext(ctx context.Context, query string) (res *sparql.Result, err error) {
	defer recoverPipeline("query", query, &err)
	ctx, cancel := s.withTimeout(ctx)
	defer cancel()
	q, err := sparql.Parse(query)
	if err != nil {
		return nil, err
	}
	s.graph.FreezeCtx(ctx)
	if s.cache != nil {
		return s.queryCached(ctx, query, q)
	}
	return sparql.EvalContext(ctx, s.graph, q, s.budget.limits())
}
