package core

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"gqa/internal/budget"
	"gqa/internal/dict"
	"gqa/internal/faultpoint"
	"gqa/internal/store"
)

// Match is a subgraph match of Q^S over the RDF graph (Definition 3): an
// injective assignment of query vertices to graph entities, with the
// predicate path chosen per edge and the score of Definition 6.
type Match struct {
	Assignment []store.ID  // per query vertex: the matched entity u_i
	Via        []store.ID  // per vertex: the class c_i justifying it, or store.None
	EdgePaths  []dict.Path // per query edge: the chosen predicate path
	Score      float64     // Definition 6 (log-space, ≤ 0)
}

func (m *Match) key() string {
	var b strings.Builder
	for _, u := range m.Assignment {
		b.WriteString(strconv.FormatUint(uint64(u), 36))
		b.WriteByte('.')
	}
	return b.String()
}

// MatchOptions tunes the top-k search.
type MatchOptions struct {
	// TopK is the number of distinct match scores kept (the paper returns
	// every match tied on a kept score). Zero means 10.
	TopK int
	// DisablePruning turns off the neighborhood-based candidate filter of
	// §4.2.2 (ablation).
	DisablePruning bool
	// Exhaustive disables the TA-style early-termination rule and scans
	// every candidate (ablation for Algorithm 3's stopping strategy).
	Exhaustive bool
	// MaxMatches is a safety cap on enumerated matches (default 10000).
	MaxMatches int
	// Budget bounds the search (wall-clock deadline, cancellation, step and
	// candidate-expansion limits). Nil means unlimited; the search then
	// behaves bit-identically to the budget-free engine. When the budget is
	// exhausted the search stops where it stands and harvest returns the
	// best partial top-k found so far, with MatchStats.Truncated naming the
	// reason.
	Budget *budget.Tracker
}

func (o *MatchOptions) defaults() {
	if o.TopK == 0 {
		o.TopK = 10
	}
	if o.MaxMatches == 0 {
		o.MaxMatches = 10000
	}
}

// matcher carries the state of one top-k search.
type matcher struct {
	g    *store.Graph
	q    *QueryGraph
	opts MatchOptions

	cands   [][]VertexCandidate // pruned candidate lists per vertex
	adj     [][]int             // vertex → incident edge indices
	found   map[string]*Match
	results []*Match // maintained sorted by descending score
	probes  int      // anchored searches performed (stats)
}

// MatchStats reports search effort, used by the ablation benchmarks.
type MatchStats struct {
	AnchorsProbed  int
	CandidatesKept int
	CandidatesCut  int // removed by neighborhood pruning
	Rounds         int
	EarlyStopped   bool
	// Truncated is the budget-exhaustion reason ("deadline", "canceled",
	// "steps", "candidates") when the search was cut short, "" for a
	// complete search. A truncated search still returns the best partial
	// top-k discovered before the budget ran out.
	Truncated string
}

// FindTopKMatches runs Algorithm 3: sort candidate lists, advance cursors
// in round-robin, run an exploration-based (VF2-style) subgraph search from
// every cursor candidate, and stop once the current k-th score beats the
// upper bound of Equation 3.
func FindTopKMatches(g *store.Graph, q *QueryGraph, opts MatchOptions) ([]Match, MatchStats) {
	opts.defaults()
	m := &matcher{g: g, q: q, opts: opts, found: make(map[string]*Match)}
	var stats MatchStats

	m.adj = make([][]int, len(q.Vertices))
	for ei, e := range q.Edges {
		m.adj[e.From] = append(m.adj[e.From], ei)
		if e.To != e.From {
			m.adj[e.To] = append(m.adj[e.To], ei)
		}
	}

	// Neighborhood-based pruning (§4.2.2): drop entity candidates lacking
	// an adjacent predicate compatible with every incident edge.
	m.cands = make([][]VertexCandidate, len(q.Vertices))
	for vi := range q.Vertices {
		for _, c := range q.Vertices[vi].Candidates {
			if !opts.DisablePruning && !c.IsClass && !m.passesNeighborhood(vi, c.ID) {
				stats.CandidatesCut++
				continue
			}
			m.cands[vi] = append(m.cands[vi], c)
			stats.CandidatesKept++
		}
	}

	// A constrained vertex whose candidate list is empty (after pruning)
	// can never be matched; Definition 3 admits no subgraph.
	for vi := range q.Vertices {
		if !q.Vertices[vi].Unconstrained && len(m.cands[vi]) == 0 {
			return nil, stats
		}
	}

	anchors := m.anchorVertices()
	if len(anchors) == 0 {
		// Every vertex is unconstrained (an all-wh question): enumerate
		// graph vertices as the anchor for vertex 0.
		m.enumerateUnanchored()
		stats.AnchorsProbed = m.probes
		stats.Truncated = opts.Budget.Exhausted()
		return m.harvest(), stats
	}

	maxLen := 0
	for _, vi := range anchors {
		if l := len(m.cands[vi]); l > maxLen {
			maxLen = l
		}
	}
	for round := 0; round < maxLen && !opts.Budget.Done(); round++ {
		stats.Rounds++
		for _, vi := range anchors {
			if round >= len(m.cands[vi]) {
				continue
			}
			m.searchFromAnchor(vi, m.cands[vi][round])
			if opts.Budget.Done() {
				break
			}
		}
		if !opts.Exhaustive && m.thresholdReached(anchors, round) {
			stats.EarlyStopped = true
			break
		}
	}
	stats.AnchorsProbed = m.probes
	stats.Truncated = opts.Budget.Exhausted()
	return m.harvest(), stats
}

// anchorVertices returns the constrained vertices usable as TA cursors.
// When several are available, vertices whose candidates expand to very
// large seed sets (a class with tens of thousands of instances) are
// dropped as anchors: every match still contains a candidate of each
// remaining anchor, so enumeration stays complete, and thresholdReached
// keeps the skipped vertices' best scores in the upper bound, so the
// stopping rule stays sound.
func (m *matcher) anchorVertices() []int {
	type av struct {
		vi   int
		cost int
	}
	var all []av
	for vi := range m.q.Vertices {
		if m.q.Vertices[vi].Unconstrained || len(m.cands[vi]) == 0 {
			continue
		}
		cost := 0
		for _, c := range m.cands[vi] {
			if c.IsClass {
				cost += len(m.g.InstancesOf(c.ID))
			} else {
				cost++
			}
		}
		all = append(all, av{vi, cost})
	}
	if len(all) <= 1 {
		out := make([]int, len(all))
		for i, a := range all {
			out[i] = a.vi
		}
		return out
	}
	minCost := all[0].cost
	for _, a := range all {
		if a.cost < minCost {
			minCost = a.cost
		}
	}
	var out []int
	for _, a := range all {
		if a.cost <= 64*(minCost+1) {
			out = append(out, a.vi)
		}
	}
	return out
}

// passesNeighborhood implements the u₅ test of §4.2.2: an entity candidate
// survives only if, for every incident query edge, some candidate path's
// first or last predicate is adjacent to it.
func (m *matcher) passesNeighborhood(vi int, u store.ID) bool {
	for _, ei := range m.adj[vi] {
		e := &m.q.Edges[ei]
		ok := false
		for _, c := range e.Candidates {
			if len(c.Path) == 0 {
				continue
			}
			first, last := c.Path[0].Pred, c.Path[len(c.Path)-1].Pred
			if m.g.HasAdjacentPred(u, first) || m.g.HasAdjacentPred(u, last) {
				ok = true
				break
			}
		}
		if !ok && len(e.Candidates) > 0 {
			return false
		}
	}
	return true
}

// thresholdReached evaluates the TA stopping rule: the upper bound on any
// undiscovered match (every anchor candidate at position > round, every
// edge at its best) must not beat the current k-th best score.
func (m *matcher) thresholdReached(anchors []int, round int) bool {
	theta, full := m.kthScore()
	if !full {
		return false
	}
	up := 0.0
	anchored := make(map[int]bool, len(anchors))
	for _, vi := range anchors {
		anchored[vi] = true
		if round+1 >= len(m.cands[vi]) {
			// This list is exhausted: every match containing one of its
			// candidates has been enumerated, so no undiscovered match
			// exists at all.
			return true
		}
		up += math.Log(m.cands[vi][round+1].Score)
	}
	// Constrained vertices that were not anchored (anchor-cost skipping)
	// contribute their best score — sound, since nothing bounds the
	// position of their candidate in an undiscovered match.
	for vi := range m.q.Vertices {
		if m.q.Vertices[vi].Unconstrained || anchored[vi] || len(m.cands[vi]) == 0 {
			continue
		}
		up += math.Log(m.cands[vi][0].Score)
	}
	for _, e := range m.q.Edges {
		if len(e.Candidates) > 0 {
			up += math.Log(e.Candidates[0].Score)
		}
	}
	return theta >= up
}

// kthScore returns the current k-th distinct score and whether k distinct
// scores exist yet.
func (m *matcher) kthScore() (float64, bool) {
	distinct := 0
	last := math.Inf(1)
	for _, r := range m.results {
		if r.Score != last {
			distinct++
			last = r.Score
		}
		if distinct == m.opts.TopK {
			return last, true
		}
	}
	return math.Inf(-1), false
}

// harvest returns the matches carrying the top-k distinct scores.
func (m *matcher) harvest() []Match {
	var out []Match
	distinct := 0
	last := math.Inf(1)
	for _, r := range m.results {
		if r.Score != last {
			distinct++
			last = r.Score
			if distinct > m.opts.TopK {
				break
			}
		}
		out = append(out, *r)
	}
	return out
}

func (m *matcher) record(match *Match) {
	if len(m.found) >= m.opts.MaxMatches {
		return
	}
	k := match.key()
	if prev, ok := m.found[k]; ok {
		if match.Score > prev.Score {
			*prev = *match
			sort.SliceStable(m.results, func(i, j int) bool { return m.results[i].Score > m.results[j].Score })
		}
		return
	}
	cp := *match
	cp.Assignment = append([]store.ID(nil), match.Assignment...)
	cp.Via = append([]store.ID(nil), match.Via...)
	cp.EdgePaths = append([]dict.Path(nil), match.EdgePaths...)
	m.found[k] = &cp
	pos := sort.Search(len(m.results), func(i int) bool { return m.results[i].Score < cp.Score })
	m.results = append(m.results, nil)
	copy(m.results[pos+1:], m.results[pos:])
	m.results[pos] = &cp
}

// searchFromAnchor enumerates every match in which query vertex vi is
// matched through candidate c (directly, or via the instances of a class
// candidate).
func (m *matcher) searchFromAnchor(vi int, c VertexCandidate) {
	m.probes++
	us := []store.ID{c.ID}
	via := store.None
	if c.IsClass {
		us = m.g.InstancesOf(c.ID)
		via = c.ID
	}
	n := len(m.q.Vertices)
	for _, u := range us {
		if !m.opts.Budget.Candidate() {
			return
		}
		st := &searchState{
			assign: make([]store.ID, n),
			via:    make([]store.ID, n),
			score:  make([]float64, n),
			paths:  make([]dict.Path, len(m.q.Edges)),
			pscore: make([]float64, len(m.q.Edges)),
			done:   make([]bool, n),
		}
		for i := range st.assign {
			st.assign[i] = store.None
			st.via[i] = store.None
		}
		st.assign[vi] = u
		st.via[vi] = via
		st.score[vi] = c.Score
		st.done[vi] = true
		m.extend(st)
	}
}

type searchState struct {
	assign []store.ID
	via    []store.ID
	score  []float64 // δ per vertex (1.0 for unconstrained)
	paths  []dict.Path
	pscore []float64
	done   []bool
}

// extend grows the partial assignment by one vertex (VF2-style: always a
// vertex adjacent to the matched region when one exists) until complete.
func (m *matcher) extend(st *searchState) {
	if len(m.found) >= m.opts.MaxMatches {
		return
	}
	faultpoint.Hit(faultpoint.MatcherExtend)
	if !m.opts.Budget.Step() {
		return
	}
	next, bridge := m.chooseNext(st)
	if next < 0 {
		m.finish(st)
		return
	}
	if bridge < 0 {
		// Disconnected component: start it from its own candidate list.
		if m.q.Vertices[next].Unconstrained {
			// An unconstrained vertex in its own component would match
			// everything; such degenerate queries yield no useful match.
			return
		}
		for _, c := range m.cands[next] {
			us := []store.ID{c.ID}
			via := store.None
			if c.IsClass {
				us = m.g.InstancesOf(c.ID)
				via = c.ID
			}
			for _, u := range us {
				if !m.opts.Budget.Candidate() {
					return
				}
				if m.used(st, u) {
					continue
				}
				st.assign[next], st.via[next], st.score[next], st.done[next] = u, via, c.Score, true
				m.extend(st)
				st.assign[next], st.via[next], st.done[next] = store.None, store.None, false
			}
		}
		return
	}

	e := &m.q.Edges[bridge]
	from := st.assign[e.From]
	reversedEdge := false
	if !st.done[e.From] {
		from = st.assign[e.To]
		reversedEdge = true
	}
	for _, pc := range e.Candidates {
		targets := m.reachable(from, pc.Path, reversedEdge)
		for _, w := range targets {
			if m.used(st, w) {
				continue
			}
			vc, ok := m.vertexAccepts(next, w)
			if !ok {
				continue
			}
			st.assign[next], st.via[next], st.score[next], st.done[next] = w, vc.via, vc.score, true
			st.paths[bridge], st.pscore[bridge] = pc.Path, pc.Score
			m.extend(st)
			st.assign[next], st.via[next], st.done[next] = store.None, store.None, false
			st.paths[bridge], st.pscore[bridge] = nil, 0
		}
	}
}

// chooseNext picks the next unmatched vertex, preferring one adjacent to
// the matched region, and returns the connecting edge index (or -1).
func (m *matcher) chooseNext(st *searchState) (vertex, bridge int) {
	for ei := range m.q.Edges {
		e := &m.q.Edges[ei]
		switch {
		case st.done[e.From] && !st.done[e.To]:
			return e.To, ei
		case st.done[e.To] && !st.done[e.From]:
			return e.From, ei
		}
	}
	for vi := range m.q.Vertices {
		if !st.done[vi] {
			return vi, -1
		}
	}
	return -1, -1
}

// reachable returns the vertices connected to u by path p in either
// orientation (Definition 3 condition 3). reversed means u sits at the
// edge's To side, so the recorded path is read backwards first.
func (m *matcher) reachable(u store.ID, p dict.Path, reversed bool) []store.ID {
	if !m.opts.Budget.Step() {
		return nil
	}
	a := p
	b := p.Reverse()
	if reversed {
		a, b = b, a
	}
	out := dict.FollowPath(m.g, u, a)
	seen := make(map[store.ID]struct{}, len(out))
	for _, w := range out {
		seen[w] = struct{}{}
	}
	for _, w := range dict.FollowPath(m.g, u, b) {
		if _, dup := seen[w]; !dup {
			seen[w] = struct{}{}
			out = append(out, w)
		}
	}
	return out
}

type acceptance struct {
	via   store.ID
	score float64
}

// vertexAccepts checks Definition 3 conditions 1–2 for matching graph
// vertex w to query vertex vi, returning the best-scoring justification.
func (m *matcher) vertexAccepts(vi int, w store.ID) (acceptance, bool) {
	v := &m.q.Vertices[vi]
	if v.Unconstrained {
		// Wh-arguments match every entity and class (§2.2); δ = 1.
		return acceptance{via: store.None, score: 1.0}, true
	}
	best := acceptance{via: store.None, score: -1}
	for _, c := range m.cands[vi] {
		switch {
		case !c.IsClass && c.ID == w:
			if c.Score > best.score {
				best = acceptance{via: store.None, score: c.Score}
			}
		case c.IsClass && m.g.HasType(w, c.ID):
			if c.Score > best.score {
				best = acceptance{via: c.ID, score: c.Score}
			}
		}
	}
	if best.score < 0 {
		return acceptance{}, false
	}
	return best, true
}

func (m *matcher) used(st *searchState, u store.ID) bool {
	for vi, d := range st.done {
		if d && st.assign[vi] == u {
			return true
		}
	}
	return false
}

// finish validates remaining edge constraints (edges whose endpoints were
// both matched before the edge could serve as a bridge) and records the
// match with its Definition 6 score. Paths it chooses itself are reset
// before returning so backtracking state stays consistent.
func (m *matcher) finish(st *searchState) {
	var filled []int
	defer func() {
		for _, ei := range filled {
			st.paths[ei], st.pscore[ei] = nil, 0
		}
	}()
	score := 0.0
	for vi := range m.q.Vertices {
		if st.score[vi] > 0 {
			score += math.Log(st.score[vi])
		}
	}
	for ei := range m.q.Edges {
		e := &m.q.Edges[ei]
		if st.paths[ei] == nil {
			// Choose the best candidate path connecting the endpoints.
			found := false
			for _, pc := range e.Candidates {
				if dict.PathConnects(m.g, st.assign[e.From], st.assign[e.To], pc.Path) {
					st.paths[ei], st.pscore[ei] = pc.Path, pc.Score
					filled = append(filled, ei)
					found = true
					break
				}
			}
			if !found {
				return
			}
		}
		score += math.Log(st.pscore[ei])
	}
	m.record(&Match{
		Assignment: st.assign,
		Via:        st.via,
		EdgePaths:  st.paths,
		Score:      score,
	})
}

// enumerateUnanchored handles the degenerate all-wh query ("Who married
// whom?") by trying every graph vertex as the binding of vertex 0. Such
// queries carry no candidate-list signal, so exhaustive anchoring is the
// only sound strategy; MaxMatches bounds the work.
func (m *matcher) enumerateUnanchored() {
	if len(m.q.Vertices) == 0 {
		return
	}
	m.probes++
	n := len(m.q.Vertices)
	for v := 0; v < m.g.NumTerms() && len(m.found) < m.opts.MaxMatches; v++ {
		u := store.ID(v)
		if !m.g.Term(u).IsIRI() || m.g.Degree(u) == 0 {
			continue
		}
		if !m.opts.Budget.Candidate() {
			return
		}
		st := &searchState{
			assign: make([]store.ID, n),
			via:    make([]store.ID, n),
			score:  make([]float64, n),
			paths:  make([]dict.Path, len(m.q.Edges)),
			pscore: make([]float64, len(m.q.Edges)),
			done:   make([]bool, n),
		}
		for i := range st.assign {
			st.assign[i] = store.None
			st.via[i] = store.None
		}
		st.assign[0], st.score[0], st.done[0] = u, 1.0, true
		m.extend(st)
	}
}
