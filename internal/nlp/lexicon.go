package nlp

// The tagging lexicon: closed-class words, frequent verbs, and the
// irregular morphology needed to lemmatize questions. It is intentionally
// compact — the open classes are handled by the morphological guesser in
// tagger.go — but the closed classes are complete enough for the QALD-style
// interrogatives the benchmarks use.

// wordTags maps a lowercase word to its preferred tag when tagging
// questions. Ambiguous words are resolved contextually by the tagger.
var wordTags = map[string]string{
	// determiners
	"the": "DT", "a": "DT", "an": "DT", "all": "DT", "every": "DT",
	"some": "DT", "any": "DT", "no": "DT", "this": "DT", "that": "DT",
	"these": "DT", "those": "DT", "each": "DT", "both": "DT",

	// wh-words
	"who": "WP", "whom": "WP", "what": "WP", "whose": "WP$",
	"which": "WDT", "where": "WRB", "when": "WRB", "why": "WRB", "how": "WRB",

	// pronouns
	"i": "PRP", "you": "PRP", "he": "PRP", "she": "PRP", "it": "PRP",
	"we": "PRP", "they": "PRP", "me": "PRP", "him": "PRP", "her": "PRP",
	"us": "PRP", "them": "PRP",
	"my": "PRP$", "your": "PRP$", "his": "PRP$", "its": "PRP$",
	"our": "PRP$", "their": "PRP$",

	// prepositions / subordinators
	"of": "IN", "in": "IN", "on": "IN", "at": "IN", "by": "IN",
	"with": "IN", "from": "IN", "through": "IN", "for": "IN",
	"about": "IN", "into": "IN", "after": "IN", "before": "IN",
	"between": "IN", "during": "IN", "under": "IN", "over": "IN",
	"as": "IN", "near": "IN",

	// particles / misc
	"to": "TO", "not": "RB", "also": "RB", "currently": "RB",
	"and": "CC", "or": "CC", "but": "CC",
	"there": "EX",
	"many":  "JJ", "much": "JJ", "most": "JJS", "more": "JJR",
	"first": "JJ", "last": "JJ", "highest": "JJS", "largest": "JJS",
	"youngest": "JJS", "oldest": "JJS", "tallest": "JJS", "longest": "JJS",
	"biggest": "JJS", "smallest": "JJS", "latest": "JJS",
	"high": "JJ", "tall": "JJ", "long": "JJ", "big": "JJ", "old": "JJ",
	"famous": "JJ", "former": "JJ", "official": "JJ", "national": "JJ",

	// auxiliaries and copulas
	"born": "VBN", "located": "VBN", "buried": "VBN", "married": "VBN",
	"called": "VBN", "connected": "VBN", "operated": "VBN", "produced": "VBN",
	"directed": "VBN", "published": "VBN", "written": "VBN", "created": "VBN",
	"founded": "VBN", "owned": "VBN", "developed": "VBN", "crossed": "VBN",
	"is": "VBZ", "are": "VBP", "was": "VBD", "were": "VBD",
	"am": "VBP", "be": "VB", "been": "VBN", "being": "VBG",
	"do": "VBP", "does": "VBZ", "did": "VBD", "done": "VBN",
	"have": "VBP", "has": "VBZ", "had": "VBD",
	"will": "MD", "would": "MD", "can": "MD", "could": "MD",
	"may": "MD", "might": "MD", "shall": "MD", "should": "MD", "must": "MD",

	// frequent question verbs (base forms; inflections are guessed)
	"give": "VB", "list": "VB", "show": "VB", "name": "VB", "tell": "VB",
	"play": "VB", "star": "VB", "act": "VB", "marry": "VB", "bear": "VB",
	"die": "VB", "live": "VB", "work": "VB", "write": "VB", "create": "VB",
	"found": "VBD", "develop": "VB", "produce": "VB", "direct": "VB",
	"flow": "VB", "connect": "VB", "locate": "VB", "call": "VB",
	"publish": "VB", "own": "VB", "lead": "VB", "win": "VB", "make": "VB",
	"come": "VB", "belong": "VB", "border": "VB", "cross": "VB",
	"graduate": "VB", "study": "VB", "invent": "VB", "design": "VB",
	"compose": "VB", "paint": "VB", "discover": "VB", "run": "VB",
	"operate": "VB", "bury": "VB", "succeed": "VB", "govern": "VB",
}

// irregularVerbLemmas maps inflected forms to their base form.
var irregularVerbLemmas = map[string]string{
	"is": "be", "are": "be", "was": "be", "were": "be", "am": "be",
	"been": "be", "being": "be",
	"does": "do", "did": "do", "done": "do", "doing": "do",
	"has": "have", "had": "have", "having": "have",
	"born": "bear", "bore": "bear",
	"wrote": "write", "written": "write",
	"made": "make", "led": "lead", "won": "win", "ran": "run",
	"came": "come", "went": "go", "gone": "go", "got": "get",
	"gave": "give", "given": "give", "took": "take", "taken": "take",
	"found": "find", "founded": "found", // "founded" is regular past of "found"
	"said": "say", "told": "tell", "flew": "fly", "flown": "fly",
	"grew": "grow", "grown": "grow", "met": "meet", "held": "hold",
	"left": "leave", "built": "build", "spoke": "speak", "spoken": "speak",
	"sang": "sing", "sung": "sing", "died": "die", "lay": "lie",
	"fed": "feed", "sold": "sell", "bought": "buy", "taught": "teach",
	"buried": "bury", "married": "marry", "studied": "study",
	"lived": "live", "starred": "star", "preferred": "prefer",
	"succeeded": "succeed", "named": "name", "goes": "go",
	"moved": "move", "ruled": "rule", "used": "use", "based": "base",
}

// irregularNounLemmas maps irregular plurals to their singular.
var irregularNounLemmas = map[string]string{
	"people": "person", "children": "child", "men": "man", "women": "woman",
	"countries": "country", "cities": "city", "companies": "company",
	"parties": "party", "universities": "university", "movies": "movie",
	"feet": "foot", "teeth": "tooth", "mice": "mouse",
	"wives": "wife", "lives": "life",
}

// lightWords are the words Rule 1 of §4.1.2 may absorb when extending a
// relation-phrase embedding: prepositions, particles, auxiliaries and
// determiners that carry no argument content.
var lightWords = map[string]bool{
	"of": true, "in": true, "on": true, "at": true, "by": true, "to": true,
	"with": true, "from": true, "for": true, "through": true, "into": true,
	"a": true, "an": true, "the": true,
	"is": true, "are": true, "was": true, "were": true, "be": true,
	"been": true, "am": true, "do": true, "does": true, "did": true,
	"have": true, "has": true, "had": true,
}

// IsLightWord reports whether w (lowercase) is a light word per Rule 1.
func IsLightWord(w string) bool { return lightWords[w] }

// auxLemmas are verbs that act as auxiliaries when another verb follows.
var auxLemmas = map[string]bool{"be": true, "do": true, "have": true}

// imperativeVerbs start list-style questions ("Give me all …").
var imperativeVerbs = map[string]bool{
	"give": true, "list": true, "show": true, "name": true, "tell": true,
}
