package store

// Binary snapshots: a compact dictionary-encoded serialization of a graph,
// loading far faster than re-parsing N-Triples. Intended for shipping a
// prepared knowledge base next to its mined dictionary.
//
// Layout (all integers unsigned varints unless noted):
//
//	magic "GQASNAP1"
//	termCount, then per term: kind byte, value, datatype, lang (len-prefixed)
//	tripleCount, then per triple: s, p, o (IDs)

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"gqa/internal/rdf"
)

var snapshotMagic = []byte("GQASNAP1")

// Snapshot writes the graph in binary snapshot format. Every write error —
// including a short write mid-stream, not just one surfacing at the final
// flush — is returned, so a full disk cannot yield a truncated file with a
// nil error.
func (g *Graph) Snapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic); err != nil {
		return fmt.Errorf("store: writing snapshot magic: %w", err)
	}
	if err := writeUvarint(bw, uint64(len(g.terms))); err != nil {
		return fmt.Errorf("store: writing snapshot term count: %w", err)
	}
	for i, t := range g.terms {
		if err := bw.WriteByte(byte(t.Kind())); err != nil {
			return fmt.Errorf("store: writing snapshot term %d: %w", i, err)
		}
		for _, s := range [3]string{t.Value(), t.Datatype(), t.Lang()} {
			if err := writeString(bw, s); err != nil {
				return fmt.Errorf("store: writing snapshot term %d: %w", i, err)
			}
		}
	}
	// Deterministic triple order.
	triples := make([]Spo, 0, len(g.triples))
	for spo := range g.triples {
		triples = append(triples, spo)
	}
	sort.Slice(triples, func(i, j int) bool {
		a, b := triples[i], triples[j]
		if a.S != b.S {
			return a.S < b.S
		}
		if a.P != b.P {
			return a.P < b.P
		}
		return a.O < b.O
	})
	if err := writeUvarint(bw, uint64(len(triples))); err != nil {
		return fmt.Errorf("store: writing snapshot triple count: %w", err)
	}
	for i, t := range triples {
		for _, id := range [3]ID{t.S, t.P, t.O} {
			if err := writeUvarint(bw, uint64(id)); err != nil {
				return fmt.Errorf("store: writing snapshot triple %d: %w", i, err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("store: flushing snapshot: %w", err)
	}
	return nil
}

// LoadSnapshot reads a snapshot into a fresh graph. The stream must end
// exactly after the last triple: trailing bytes (a concatenated or corrupt
// file) are rejected with a positioned error instead of being silently
// ignored.
func LoadSnapshot(r io.Reader) (*Graph, error) {
	cr := &countingReader{r: r}
	br := bufio.NewReader(cr)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("store: reading snapshot magic: %w", err)
	}
	if string(magic) != string(snapshotMagic) {
		return nil, fmt.Errorf("store: not a gqa snapshot (magic %q)", magic)
	}
	g := New()
	nTerms, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("store: term count: %w", err)
	}
	const maxTerms = 1 << 31
	if nTerms > maxTerms {
		return nil, fmt.Errorf("store: implausible term count %d", nTerms)
	}
	for i := uint64(0); i < nTerms; i++ {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("store: term %d kind: %w", i, err)
		}
		value, err := readString(br)
		if err != nil {
			return nil, fmt.Errorf("store: term %d value: %w", i, err)
		}
		datatype, err := readString(br)
		if err != nil {
			return nil, fmt.Errorf("store: term %d datatype: %w", i, err)
		}
		lang, err := readString(br)
		if err != nil {
			return nil, fmt.Errorf("store: term %d lang: %w", i, err)
		}
		var t rdf.Term
		switch rdf.Kind(kind) {
		case rdf.KindIRI:
			t = rdf.NewIRI(value)
		case rdf.KindBlank:
			t = rdf.NewBlank(value)
		case rdf.KindLiteral:
			switch {
			case lang != "":
				t = rdf.NewLangLiteral(value, lang)
			case datatype != "":
				t = rdf.NewTypedLiteral(value, datatype)
			default:
				t = rdf.NewLiteral(value)
			}
		default:
			return nil, fmt.Errorf("store: term %d has unknown kind %d", i, kind)
		}
		if got := g.Intern(t); got != ID(i) {
			return nil, fmt.Errorf("store: duplicate term %d in snapshot", i)
		}
	}
	nTriples, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("store: triple count: %w", err)
	}
	for i := uint64(0); i < nTriples; i++ {
		s, err1 := binary.ReadUvarint(br)
		p, err2 := binary.ReadUvarint(br)
		o, err3 := binary.ReadUvarint(br)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("store: triple %d truncated", i)
		}
		if s >= nTerms || p >= nTerms || o >= nTerms {
			return nil, fmt.Errorf("store: triple %d references unknown term", i)
		}
		g.AddSPO(ID(s), ID(p), ID(o))
	}
	if _, err := br.ReadByte(); err != io.EOF {
		if err != nil {
			return nil, fmt.Errorf("store: snapshot: reading past final triple: %w", err)
		}
		off := cr.n - int64(br.Buffered()) - 1
		return nil, fmt.Errorf("store: snapshot: trailing data at byte offset %d (after %d triples)", off, nTriples)
	}
	return g, nil
}

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeString(w *bufio.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	const maxString = 1 << 24
	if n > maxString {
		return "", fmt.Errorf("implausible string length %d", n)
	}
	// Grow geometrically instead of trusting the declared length: a lying
	// length field on a short stream fails after at most one chunk beyond
	// the bytes actually present.
	const chunk = 1 << 16
	buf := make([]byte, 0, min(n, chunk))
	for uint64(len(buf)) < n {
		step := min(n-uint64(len(buf)), chunk)
		start := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(br, buf[start:]); err != nil {
			return "", err
		}
	}
	return string(buf), nil
}
